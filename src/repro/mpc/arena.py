"""Shared-memory arena: named, ref-counted numpy segments for machines.

The zero-copy executor (``Cluster(executor="shm")``) stores large machine
arrays in POSIX shared memory (``multiprocessing.shared_memory``) so
worker processes read and write *views* instead of shipping pickled
copies.  This module owns that storage:

* :class:`StoredArray` — an immutable *handle*: segment name, dtype,
  shape, byte offset.  Handles live in machine stores and message
  payloads in place of the arrays they describe; only handles (a few
  dozen bytes) cross the process boundary.  A handle charges exactly the
  words of the array it replaces (``mpc_words()`` — one word per
  element), so every model-level number is bit-identical to the
  plain-dict storage path.
* :class:`Arena` — the coordinator-side owner of segments.  It promotes
  eligible arrays into fresh segments, resolves handles back to numpy
  views, adopts segments that workers created, and garbage-collects by
  reachability: after every round it re-scans the machines and unlinks
  any segment no store slot or inbox payload references any more
  (set-based ref-counting over the single source of truth, the machines
  themselves).
* :class:`WorkerArena` — the worker-process twin: attaches to parent
  segments on demand, creates new segments for arrays the step wrote,
  and detaches everything at batch end so long-lived pool workers never
  pin freed memory.

**Leak-proofing.**  Every segment name starts with the arena's unique
``prefix`` (which itself starts with :data:`SEGMENT_PREFIX`), so cleanup
never needs a registry: ``destroy()`` — also run via ``weakref.finalize``
at garbage collection or interpreter exit — unlinks everything it owns
and then sweeps ``/dev/shm`` for any prefix-matching stragglers (e.g.
segments a worker created just before ``os._exit``).  The executor runs
the same sweep after a ``BrokenProcessPool``.  Python <= 3.12 registers
every segment with the ``multiprocessing`` resource tracker, which both
double-unlinks and spams warnings for segments shared across processes;
:func:`_untrack` opts each handle out — the arena's own reachability
collection plus the prefix sweeps are the actual guarantee.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpc.message import Message, message_with_payload

__all__ = [
    "Arena",
    "StoredArray",
    "WorkerArena",
    "DEFAULT_SHM_MIN_BYTES",
    "SEGMENT_PREFIX",
    "active_segment_files",
    "shm_dir",
]

#: Arrays below this many bytes stay in the plain dict store: a handle
#: plus a segment plus an attach round-trip costs more than pickling a
#: few hundred bytes.  Tunable via ``SimulationConfig(shm_min_bytes=...)``.
DEFAULT_SHM_MIN_BYTES = 512

#: Every segment any arena ever creates starts with this, so tests and
#: teardown sweeps can identify simulator segments among unrelated
#: ``/dev/shm`` entries without a registry.
SEGMENT_PREFIX = "mpcshm"


def shm_dir() -> Optional[str]:
    """Directory where POSIX shared memory appears, or ``None``.

    Linux exposes segments as files under ``/dev/shm``; on platforms
    without it the name-based sweeps degrade to no-ops (the registry
    unlink path still runs everywhere).
    """
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def active_segment_files(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Simulator segment files currently present (sorted names).

    The test suite's leak fixture asserts this is empty after every
    test; ``prefix`` narrows the scan to one arena.
    """
    directory = shm_dir()
    if directory is None:
        return []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(prefix))


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt a segment out of the multiprocessing resource tracker.

    The tracker assumes one owning process per segment and unlinks (plus
    warns) on exit; arena segments are shared across the pool and owned
    by the arena's reachability collection instead (bpo-39959).
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Unlink a tracker-exempt segment's name (idempotent).

    ``SharedMemory.unlink()`` also tells the resource tracker to forget
    the name — but :func:`_untrack` already did, and the tracker logs a
    ``KeyError`` traceback for names it does not know.  Go through the
    low-level primitive instead; fall back to re-register + unlink on
    platforms without it.
    """
    try:
        shared_memory._posixshmem.shm_unlink(shm._name)  # type: ignore[attr-defined]
    except FileNotFoundError:
        pass
    except AttributeError:  # pragma: no cover - non-POSIX fallback
        try:
            resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
            shm.unlink()
        except FileNotFoundError:
            pass


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment by name (tracker-exempt)."""
    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    return shm


def _create_segment(name: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create a fresh segment (tracker-exempt)."""
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
    _untrack(shm)
    return shm


def _buffer_address(buf: memoryview) -> int:
    """Start address of a segment buffer (for view-aliasing detection)."""
    probe = np.frombuffer(buf, dtype=np.uint8)
    return int(probe.__array_interface__["data"][0])


@dataclass(frozen=True)
class StoredArray:
    """Handle to an array living in a shared-memory segment.

    ``segment`` names the :class:`multiprocessing.shared_memory` block,
    ``dtype`` is the numpy dtype string (endianness included), ``shape``
    the array shape, and ``offset`` the byte offset of element 0 within
    the segment.  Handles are plain picklable values — *this* is what
    crosses the IPC boundary and what sits in a machine's store between
    rounds.

    A handle charges ``mpc_words()`` = one word per element, identical
    to :func:`repro.util.sizing.words` on the array it stands for, which
    is why promoting a value to the arena never perturbs storage,
    message, or budget accounting.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int = 0

    @property
    def size(self) -> int:
        """Element count (the numpy ``size`` of the described array)."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count

    @property
    def nbytes(self) -> int:
        return self.size * np.dtype(self.dtype).itemsize

    def mpc_words(self) -> int:
        """Word charge: one per element, exactly like the raw array."""
        return max(1, self.size)

    def materialize(self) -> np.ndarray:
        """Attach, copy the array out, detach — no arena needed.

        The checkpoint layer uses this so backups and snapshots hold
        self-contained copies that survive the segment being unlinked.
        """
        shm = _open_segment(self.segment)
        try:
            out = np.ndarray(
                self.shape, dtype=np.dtype(self.dtype),
                buffer=shm.buf, offset=self.offset,
            ).copy()
        finally:
            # The view above dies inside ndarray.copy's expression, so
            # the buffer has no exports left and close() cannot fail.
            shm.close()
        return out


class _SegmentTable:
    """Shared machinery of the coordinator and worker arena halves.

    Keeps the open-segment registry plus the two maps view-aliasing
    detection needs: buffer identity -> segment name, and segment name
    -> buffer start address.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._buffer_owner: Dict[int, str] = {}
        self._owner_ids: Dict[str, List[int]] = {}
        self._buffer_start: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> List[str]:
        return sorted(self._segments)

    def _register(self, name: str, shm: shared_memory.SharedMemory) -> None:
        self._segments[name] = shm
        # Views root at either the exported memoryview (``shm.buf``) or
        # the mmap behind it — numpy unwraps a memoryview buffer to its
        # underlying object when it sets ``.base``.  Map both identities
        # (recorded now, so forgetting stays exact after ``close()``
        # nulls the attributes).
        ids = [id(shm.buf)]
        mm = getattr(shm, "_mmap", None)
        if mm is not None:
            ids.append(id(mm))
        self._owner_ids[name] = ids
        for obj_id in ids:
            self._buffer_owner[obj_id] = name
        self._buffer_start[name] = _buffer_address(shm.buf)

    def _forget(self, name: str) -> Optional[shared_memory.SharedMemory]:
        shm = self._segments.pop(name, None)
        if shm is not None:
            for obj_id in self._owner_ids.pop(name, ()):
                self._buffer_owner.pop(obj_id, None)
            self._buffer_start.pop(name, None)
        return shm

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        raise NotImplementedError

    # -- handle resolution ---------------------------------------------

    def view(self, handle: StoredArray) -> np.ndarray:
        """A live numpy view over the handle's segment (zero-copy)."""
        shm = self._segments.get(handle.segment)
        if shm is None:
            shm = self._attach(handle.segment)
        return np.ndarray(
            handle.shape, dtype=np.dtype(handle.dtype),
            buffer=shm.buf, offset=handle.offset,
        )

    def resolve_value(self, value: Any) -> Any:
        """Handles -> live views, recursing into plain containers.

        Containers are rebuilt only when something inside them actually
        resolved, so values without handles pass through untouched (same
        object identity as the serial executor would return).
        """
        if type(value) is StoredArray:
            return self.view(value)
        if type(value) is dict:
            resolved = {k: self.resolve_value(v) for k, v in value.items()}
            if any(resolved[k] is not value[k] for k in resolved):
                return resolved
            return value
        if type(value) in (list, tuple):
            items = [self.resolve_value(v) for v in value]
            if any(a is not b for a, b in zip(items, value)):
                return type(value)(items)
            return value
        return value

    def resolve_message(self, msg: Message) -> Message:
        """Swap handle payloads for their views (word size preserved)."""
        payload = self.resolve_value(msg.payload)
        if payload is not msg.payload:
            return message_with_payload(msg, payload)
        return msg

    # -- aliasing detection --------------------------------------------

    def as_handle(self, value: Any) -> Optional[StoredArray]:
        """The handle ``value`` aliases, or ``None``.

        A step that gets a view, mutates it in place, and puts it back
        stores an ndarray whose backing buffer is an arena segment; this
        maps it back to a handle without copying (the mutation is
        already visible through the segment).  Only exact, C-contiguous
        layouts within the segment qualify — anything else is treated as
        a new value and copied.
        """
        if not isinstance(value, np.ndarray):
            return None
        root: Any = value
        while isinstance(root, np.ndarray) and root.base is not None:
            root = root.base
        name = self._buffer_owner.get(id(root))
        if name is None:
            return None
        if not value.flags["C_CONTIGUOUS"] or value.dtype.hasobject:
            return None
        shm = self._segments[name]
        offset = int(value.__array_interface__["data"][0]) - self._buffer_start[name]
        if offset < 0 or offset + value.nbytes > shm.size:
            return None
        return StoredArray(name, value.dtype.str, tuple(value.shape), offset)

    # -- promotion ------------------------------------------------------

    def _new_name(self) -> str:
        raise NotImplementedError

    def _eligible(self, value: Any, min_bytes: int) -> bool:
        """Should this value move into a segment?

        Only plain C-contiguous ndarrays of non-object dtype, at least
        ``min_bytes`` large.  Subclasses (masked arrays, matrices) and
        object dtypes keep the pickled path — a segment round-trip would
        lose their type.
        """
        return (
            type(value) is np.ndarray
            and value.nbytes >= min_bytes
            and not value.dtype.hasobject
            and value.flags["C_CONTIGUOUS"]
        )

    def store_array(self, value: np.ndarray) -> StoredArray:
        """Copy an array into a fresh segment and return its handle."""
        name = self._new_name()
        shm = _create_segment(name, value.nbytes)
        self._register(name, shm)
        self._note_segment(value.nbytes)
        view = np.ndarray(value.shape, dtype=value.dtype, buffer=shm.buf)
        np.copyto(view, value, casting="no")
        return StoredArray(name, value.dtype.str, tuple(value.shape), 0)

    def _note_segment(self, nbytes: int) -> None:
        """Stats hook: a segment entered this table (created or adopted)."""

    def promote_value(self, value: Any, min_bytes: int) -> Any:
        """Value -> handle where possible; otherwise the value unchanged.

        Existing handles pass through; views of known segments map back
        to handles without copying; eligible fresh arrays are copied
        into new segments.  Plain containers (dict/list/tuple) are
        walked so the arrays *inside* them promote too — a broadcast
        dict of shift tables should cross the boundary as handles, not
        re-pickle its arrays every round.  A container is rebuilt only
        when something inside it promoted.
        """
        if type(value) is StoredArray:
            return value
        alias = self.as_handle(value)
        if alias is not None:
            return alias
        if self._eligible(value, min_bytes):
            return self.store_array(value)
        if type(value) is dict:
            promoted = {
                k: self.promote_value(v, min_bytes) for k, v in value.items()
            }
            if any(promoted[k] is not value[k] for k in promoted):
                return promoted
            return value
        if type(value) in (list, tuple):
            items = [self.promote_value(v, min_bytes) for v in value]
            if any(a is not b for a, b in zip(items, value)):
                return type(value)(items)
            return value
        return value

    def promote_message(self, msg: Message, min_bytes: int) -> Message:
        """Message with its payload promoted (word size preserved)."""
        payload = self.promote_value(msg.payload, min_bytes)
        if payload is msg.payload:
            return msg
        return message_with_payload(msg, payload)




def materialize_value(value: Any) -> Any:
    """Handles -> self-contained array copies, recursing into containers.

    The checkpoint layer uses this so snapshots and backups survive
    their segments being unlinked.  No arena needed — handles attach,
    copy, and detach on their own (:meth:`StoredArray.materialize`).
    """
    if type(value) is StoredArray:
        return value.materialize()
    if type(value) is dict:
        out = {k: materialize_value(v) for k, v in value.items()}
        if any(out[k] is not value[k] for k in out):
            return out
        return value
    if type(value) in (list, tuple):
        items = [materialize_value(v) for v in value]
        if any(a is not b for a, b in zip(items, value)):
            return type(value)(items)
        return value
    return value


# ``SharedMemory.close()`` unmaps silently even while numpy views still
# point into the segment: the views borrow the buffer through the
# memoryview, so neither the memoryview nor the mmap ever learns about
# them, and a later read through such a view is a segfault rather than
# an exception.  Terminal teardown therefore only unlinks the *name*
# and parks the still-open mapping here; POSIX keeps unlinked mappings
# valid, and the OS reclaims them when the process exits.  Mid-run
# reclamation stays with :meth:`Arena.reconcile`, which closes only
# segments proven unreachable from machine state.
_parked_mappings: List[shared_memory.SharedMemory] = []


def _release_segments(
    segments: Dict[str, shared_memory.SharedMemory], prefix: str
) -> None:
    """Unlink every registered segment's name, then sweep the prefix.

    Module-level (not a method) so ``weakref.finalize`` can run it after
    the arena object itself is gone.  Mappings are parked rather than
    closed — results handed out as zero-copy views must stay readable
    after teardown (see ``_parked_mappings``), while ``unlink`` makes
    sure nothing outlives the run on disk.
    """
    for name, shm in list(segments.items()):
        _unlink_segment(shm)
        _parked_mappings.append(shm)
    segments.clear()
    _sweep_prefix(prefix)


def _sweep_prefix(prefix: str, keep: Sequence[str] = ()) -> List[str]:
    """Unlink stray ``/dev/shm`` files matching ``prefix`` (orphans).

    Covers segments whose handles never made it back to the coordinator
    — e.g. created by a worker that ``os._exit``-ed mid-step.  Returns
    the names removed.
    """
    removed: List[str] = []
    directory = shm_dir()
    if directory is None:
        return removed
    survivors = set(keep)
    for name in active_segment_files(prefix):
        if name in survivors:
            continue
        try:
            os.unlink(os.path.join(directory, name))
            removed.append(name)
        except OSError:
            pass
    return removed


class Arena(_SegmentTable):
    """Coordinator-side segment owner for one shm executor.

    One arena per :class:`~repro.mpc.executor.ShmExecutor` instance (and
    therefore per cluster).  Responsibilities:

    * **promotion** — before machines ship to workers, replace their
      large arrays (stores and inbox payloads) with handles, deduplicated
      by object identity so a broadcast array shared by many machines
      lands in one segment;
    * **adoption** — attach segments that workers created for newly
      written arrays, so their handles resolve on the coordinator;
    * **collection** — :meth:`reconcile` drops any segment the machines
      no longer reference (reachability is the ref-count);
    * **teardown** — :meth:`destroy`, also registered via
      ``weakref.finalize`` so an abandoned cluster cleans up at GC or
      interpreter exit.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        super().__init__()
        pid = os.getpid()
        self.prefix = prefix or f"{SEGMENT_PREFIX}{pid:x}x{secrets.token_hex(3)}"
        self._counter = 0
        self.bytes_mapped = 0
        self.segments_mapped = 0
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments, self.prefix
        )

    def _new_name(self) -> str:
        self._counter += 1
        return f"{self.prefix}s{self._counter}"

    def _note_segment(self, nbytes: int) -> None:
        self.bytes_mapped += int(nbytes)
        self.segments_mapped += 1

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        """Adopt a worker-created segment (counted as newly mapped)."""
        shm = _open_segment(name)
        self._register(name, shm)
        self._note_segment(shm.size)
        return shm

    # -- round lifecycle (called by ShmExecutor) ------------------------

    def promote_machines(
        self, machines: Sequence[Any], ids: Sequence[int], min_bytes: int
    ) -> None:
        """Swap participants' large arrays for handles before shipping.

        This is a representation change, not a model write: slots are
        assigned directly (no journaling) and word counts are identical
        by :meth:`StoredArray.mpc_words`.  ``seen`` dedups by object
        identity within the pass, so one array staged onto several
        machines maps to a single shared segment.
        """
        seen: Dict[int, Any] = {}

        def promote(value: Any) -> Any:
            if type(value) is StoredArray:
                return value
            key = id(value)
            cached = seen.get(key)
            if cached is not None:
                return cached
            promoted = self.promote_value(value, min_bytes)
            if promoted is not value:
                # A handle or a container that now holds handles — either
                # way, a broadcast value shared by several machines must
                # map to the same segments, not one copy per machine.
                seen[key] = promoted
            return promoted

        for mid in ids:
            machine = machines[mid]
            store = machine._store
            for key in list(store):
                value = store[key]
                promoted = promote(value)
                if promoted is not value:
                    store[key] = promoted
            if machine.inbox:
                new_inbox: List[Message] = []
                changed = False
                for msg in machine.inbox:
                    promoted = promote(msg.payload)
                    if promoted is not msg.payload:
                        msg = message_with_payload(msg, promoted)
                        changed = True
                    new_inbox.append(msg)
                if changed:
                    # Representation swap only — never journaled as an
                    # inbox mutation.
                    machine.inbox = new_inbox

    def adopt_handles(self, values: Iterable[Any]) -> None:
        """Attach any worker-created segments referenced by ``values``.

        Recurses into plain containers — a worker may return a dict or
        list whose inner arrays it promoted.
        """
        for value in values:
            if type(value) is StoredArray:
                if value.segment not in self._segments:
                    try:
                        self._attach(value.segment)
                    except FileNotFoundError:
                        # Dangling handle (its worker died before the
                        # data landed); resolving it later raises, which
                        # is the honest failure.
                        pass
            elif type(value) is dict:
                self.adopt_handles(value.values())
            elif type(value) in (list, tuple):
                self.adopt_handles(value)

    def _segment_of(self, value: Any) -> Optional[str]:
        """Registered segment ``value`` keeps alive, or ``None``.

        Both representations count: a :class:`StoredArray` handle, and a
        raw numpy view whose backing buffer is one of our segments (a
        step run inline put a resolved view back; promotion will map it
        to its handle at the next shipped round).
        """
        if type(value) is StoredArray:
            return value.segment
        if isinstance(value, np.ndarray):
            root: Any = value
            while isinstance(root, np.ndarray) and root.base is not None:
                root = root.base
            return self._buffer_owner.get(id(root))
        return None

    def _collect_segments(self, value: Any, names: "set[str]") -> None:
        """Add every segment ``value`` keeps alive (containers walked)."""
        name = self._segment_of(value)
        if name is not None:
            names.add(name)
        elif type(value) is dict:
            for item in value.values():
                self._collect_segments(item, names)
        elif type(value) in (list, tuple):
            for item in value:
                self._collect_segments(item, names)

    def _live_segments(self, machines: Iterable[Any]) -> "set[str]":
        """Segment names reachable from any machine's store or inbox.

        The machines are the single source of truth for liveness: a
        segment nothing references any more (key deleted, value
        overwritten, state restored from a checkpoint) is garbage.
        """
        names: "set[str]" = set()
        for machine in machines:
            for value in machine._store.values():
                self._collect_segments(value, names)
            for msg in machine.inbox:
                self._collect_segments(msg.payload, names)
        return names

    def reconcile(self, machines: Sequence[Any]) -> None:
        """Garbage-collect: drop segments no machine references.

        Run at the start of every round, when all state is settled
        (results installed, messages delivered).  Also adopts referenced
        segments the arena has not seen yet (e.g. after state was
        installed outside the executor's own return path).
        """
        live = self._live_segments(machines)
        for name in list(self._segments):
            if name not in live:
                shm = self._forget(name)
                if shm is not None:
                    try:
                        shm.close()
                    except BufferError:
                        pass
                    _unlink_segment(shm)
        for name in sorted(live):
            if name not in self._segments:
                try:
                    self._attach(name)
                except FileNotFoundError:
                    pass

    def sweep_orphans(self) -> List[str]:
        """Unlink prefix-matching files not in the registry.

        The post-crash path: after a worker death, segments created by
        the dead worker (whose handles were lost with the round's
        results) are unreachable orphans.  Registered segments survive.
        """
        return _sweep_prefix(self.prefix, keep=self.segment_names())

    def pop_stats(self) -> Tuple[int, int]:
        """Take ``(bytes_mapped, segments)`` accumulated since last pop."""
        out = (self.bytes_mapped, self.segments_mapped)
        self.bytes_mapped = 0
        self.segments_mapped = 0
        return out

    def destroy(self) -> None:
        """Unlink everything now (idempotent; finalizer is disarmed)."""
        if self._finalizer.detach() is not None:
            _release_segments(self._segments, self.prefix)
        self._buffer_owner.clear()
        self._owner_ids.clear()
        self._buffer_start.clear()


class WorkerArena(_SegmentTable):
    """Worker-process segment client (one per worker process).

    Attaches to parent segments on demand to resolve handles, and
    creates new segments — under the parent arena's prefix, extended
    with a worker-unique infix — for large arrays the step wrote.
    :meth:`release_batch` detaches everything when the batch ends so a
    long-lived pool worker never pins memory the coordinator has freed;
    the files themselves persist until the coordinator (which adopts
    worker segments by name) unlinks them.
    """

    def __init__(self) -> None:
        super().__init__()
        self._token = f"w{os.getpid():x}x{secrets.token_hex(3)}"
        self._counter = 0
        self._prefix = SEGMENT_PREFIX

    def set_prefix(self, prefix: str) -> None:
        """Adopt the coordinator arena's prefix for this batch."""
        self._prefix = prefix

    def _new_name(self) -> str:
        self._counter += 1
        return f"{self._prefix}{self._token}n{self._counter}"

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        shm = _open_segment(name)
        self._register(name, shm)
        return shm

    def release_batch(self) -> None:
        """Detach every cached segment (views permitting).

        A segment whose buffer is still exported (a step stashed a view
        somewhere — an MPC010 lint violation) raises ``BufferError`` on
        close; it stays cached rather than crashing the worker.

        The table entry is removed *before* closing: ``close()`` nulls
        the buffer attribute, so forgetting afterwards would leave the
        aliasing map holding the dead buffer's id — which a future
        attachment can legitimately reuse.
        """
        for name in list(self._segments):
            shm = self._forget(name)
            if shm is None:
                continue
            try:
                shm.close()
            except BufferError:
                self._register(name, shm)


_WORKER_ARENA: Optional[WorkerArena] = None


def worker_arena(prefix: str) -> WorkerArena:
    """The process-global :class:`WorkerArena`, bound to ``prefix``."""
    global _WORKER_ARENA
    if _WORKER_ARENA is None:
        _WORKER_ARENA = WorkerArena()
    _WORKER_ARENA.set_prefix(prefix)
    return _WORKER_ARENA
