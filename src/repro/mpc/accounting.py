"""Cost accounting for MPC computations.

The benchmark harnesses check the paper's bounds against the numbers
recorded here:

* **rounds** — Theorems 1 and 3 claim ``O(1)`` (more precisely
  ``O(1/eps)``) rounds;
* **max local words** — must stay within the fully scalable budget
  ``O((n d)^eps)``;
* **total words** — near-linear total space, e.g.
  ``O(n d + xi^-2 n log^3 n)`` for the FJLT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.mpc.budget import BudgetRecord


def fully_scalable_local_memory(
    n: int, d: int, eps: float, *, slack: float = 1.0, floor: int = 64
) -> int:
    """Local memory budget ``slack * (n*d)**eps`` words, at least ``floor``.

    ``slack`` absorbs the constant hidden in ``O((nd)^eps)``; the paper's
    statements are asymptotic, so benchmarks pick a fixed slack and verify
    the *scaling*, not the constant.
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must lie in (0, 1), got {eps}")
    if n < 1 or d < 1:
        raise ValueError(f"need n, d >= 1, got n={n}, d={d}")
    return max(int(floor), int(math.ceil(slack * (n * d) ** eps)))


def machines_for(total_words: int, local_memory: int, *, slack: float = 2.0) -> int:
    """Number of machines needed to hold ``total_words`` of data.

    ``slack`` leaves headroom for intermediate values; total space is then
    ``machines * local_memory`` words.
    """
    if local_memory < 1:
        raise ValueError("local_memory must be >= 1")
    return max(1, int(math.ceil(slack * total_words / local_memory)))


@dataclass
class RoundRecord:
    """Per-round communication statistics.

    The first six fields are model-level and executor-independent.
    ``max_resident_words`` (post-delivery peak resident storage across
    machines) is model-level too.  The wave and wall-clock fields are
    budget-layer / physical measurements: ``waves`` is how many physical
    delivery sub-rounds adapt mode used (1 otherwise), the wave maxima
    are the per-machine peaks within a single wave, and
    ``wall_clock_seconds`` is the executor's measured round time — all
    ``compare=False`` so report equality stays a model-level contract.
    """

    index: int
    label: str
    messages: int
    comm_words: int
    max_sent: int
    max_received: int
    max_resident_words: int = 0
    waves: int = field(default=1, compare=False)
    max_wave_sent: int = field(default=0, compare=False)
    max_wave_recv: int = field(default=0, compare=False)
    wall_clock_seconds: float = field(default=0.0, compare=False)


@dataclass
class FaultRecord:
    """One fault-layer event: an injected fault or a recovery action.

    ``action`` is what happened — ``"injected"`` (a fault from the
    :class:`~repro.mpc.faults.FaultPlan` fired), ``"replayed"`` (the
    cluster restored pre-round state and re-ran machine steps),
    ``"retransmitted"`` / ``"deduplicated"`` (the delivery layer repaired
    a dropped / duplicated message) or ``"delayed"`` (a straggler slept).
    ``kind`` names the fault taxonomy entry (see docs/RESILIENCE.md);
    ``attempt`` is the round attempt the event belongs to (0 = the first
    execution, 1+ = replays).  Records are appended in a deterministic,
    executor-independent order, so faulty runs keep the bit-identical
    accounting contract across executors.

    Hop-level transport events (see :class:`~repro.mpc.faults.HopFault`)
    carry their delivery hop index in ``hop`` (``None`` for
    machine-granular events); ``attempt`` is then the delivery attempt
    on that edge and ``machine_id`` the *destination* machine.  Their
    actions extend the vocabulary: ``"retransmitted"`` /
    ``"redelivered"`` (a dropped / corrupted copy was re-sent),
    ``"deduplicated"``, ``"delayed"``, ``"deadline_missed"``,
    ``"speculated"`` (a late hop was speculatively re-dispatched), and
    ``"speculation_won"`` / ``"speculation_lost"`` (the adjudicated
    outcome).
    """

    round_index: int
    attempt: int
    kind: str
    machine_id: Optional[int]
    action: str
    detail: str = ""
    hop: Optional[int] = None


@dataclass
class CostReport:
    """Aggregated resource usage of one MPC computation.

    Produced by :meth:`repro.mpc.cluster.Cluster.report`; also the unit
    benchmarks serialize into EXPERIMENTS.md tables.
    """

    num_machines: int
    local_memory: int
    rounds: int = 0
    messages: int = 0
    comm_words: int = 0
    max_local_words: int = 0
    max_round_comm_words: int = 0
    peak_total_resident_words: int = 0
    round_log: List[RoundRecord] = field(default_factory=list)
    # -- fault / recovery layer (see repro.mpc.faults) ------------------
    # Injected faults and recovery actions are recorded *next to* the
    # model counters, never folded into them: a recovered run keeps
    # rounds/comm_words bit-identical to the fault-free run, and the
    # recovery overhead is legible separately.
    faults_injected: int = 0
    recovery_replays: int = 0
    # Hop-level transport faults (repro.mpc.faults.HopFault), same
    # convention: counted beside the model counters, never folded in.
    # ``hop_faults_injected`` counts hop events that fired;
    # ``hop_retries`` counts redeliveries (drop retransmits + corrupt
    # redeliveries + speculative re-dispatches); ``deadline_misses``
    # counts hops whose simulated latency crossed the DeadlinePolicy
    # line; ``speculative_wins`` counts misses where the speculative
    # copy beat the late primary.
    hop_faults_injected: int = 0
    hop_retries: int = 0
    speculative_wins: int = 0
    deadline_misses: int = 0
    fault_log: List[FaultRecord] = field(default_factory=list)
    # -- physical transport / checkpoint volume -------------------------
    # Measured bytes, not model words: what the process executor actually
    # pickled across the process boundary (``ipc_*``) and what the
    # checkpoint layer retained (``checkpoint_*``, model-word sizing at 8
    # bytes/word since checkpoints never leave the coordinator).  These
    # are *implementation* costs — serial execution ships 0 bytes — so
    # they are excluded from ``as_dict``/``core_dict`` and from report
    # equality (``compare=False``): the bit-identical-accounting contract
    # across executors and shipping modes covers model-level numbers
    # only.  Read them via :meth:`transport_dict`.
    ipc_rounds: int = field(default=0, compare=False)
    ipc_bytes_shipped: int = field(default=0, compare=False)
    ipc_bytes_returned: int = field(default=0, compare=False)
    # Under the shm executor, array contents move through shared-memory
    # segments instead of the pickle stream: ``shm_bytes_mapped`` is the
    # total size of segments the arena created (each counted once, when
    # it enters the arena) and ``shm_segments`` the segment count.  The
    # before/after story is ``ipc_bytes`` (way down) vs
    # ``shm_bytes_mapped`` (where the volume went).
    shm_bytes_mapped: int = field(default=0, compare=False)
    shm_segments: int = field(default=0, compare=False)
    checkpoint_snapshots: int = field(default=0, compare=False)
    checkpoint_deltas: int = field(default=0, compare=False)
    checkpoint_bytes: int = field(default=0, compare=False)
    # -- communication budget layer (see repro.mpc.budget) ---------------
    # Budget events follow the fault-layer convention: recorded next to
    # the model counters, never folded into them.  ``comm_waves`` counts
    # physical delivery sub-rounds (= rounds with a budget attached,
    # higher when adapt mode split); ``budget_overruns`` counts
    # per-machine/direction overruns report mode recorded;
    # ``budget_splits`` counts rounds adapt mode chunked;
    # ``oversize_messages`` counts atomic messages larger than the
    # budget.  All ``compare=False`` and outside ``as_dict``/``core_dict``
    # — the three budget modes keep model accounting bit-identical, and
    # only this layer (read via :meth:`budget_dict`) differs.
    comm_waves: int = field(default=0, compare=False)
    budget_overruns: int = field(default=0, compare=False)
    budget_splits: int = field(default=0, compare=False)
    oversize_messages: int = field(default=0, compare=False)
    budget_log: List["BudgetRecord"] = field(default_factory=list, compare=False)
    # -- incremental maintenance layer (see repro.tree.dynamic) ----------
    # Update-cost accounting for dynamic HST mutations applied through
    # the serving entry points (repro.serve.maintenance): how many
    # insert/delete mutations this report covers and how much of the
    # tree they re-partitioned.  Same convention as the other layers —
    # recorded beside the model counters, ``compare=False``, read via
    # :meth:`update_dict` — so a cluster that served mutations still
    # satisfies the bit-identical core accounting contract.
    updates_applied: int = field(default=0, compare=False)
    update_cells_touched: int = field(default=0, compare=False)
    update_levels_repartitioned: int = field(default=0, compare=False)

    @property
    def total_space(self) -> int:
        """Total space in the MPC sense: machines x local memory."""
        return self.num_machines * self.local_memory

    @property
    def peak_resident_words(self) -> int:
        """Largest words actually resident on any single machine."""
        return self.max_local_words

    def as_dict(self) -> Dict[str, int]:
        """Flat dict for tabular benchmark output."""
        return {
            "machines": self.num_machines,
            "local_memory": self.local_memory,
            "rounds": self.rounds,
            "messages": self.messages,
            "comm_words": self.comm_words,
            "max_local_words": self.max_local_words,
            "total_space": self.total_space,
            "faults_injected": self.faults_injected,
            "recovery_replays": self.recovery_replays,
            "hop_faults_injected": self.hop_faults_injected,
            "hop_retries": self.hop_retries,
            "speculative_wins": self.speculative_wins,
            "deadline_misses": self.deadline_misses,
        }

    def core_dict(self) -> Dict[str, int]:
        """``as_dict`` minus the fault-layer counters.

        The comparison surface for "a recovered run matches the
        fault-free run": every model-level number must agree; only the
        recorded recovery events may differ.
        """
        out = self.as_dict()
        out.pop("faults_injected")
        out.pop("recovery_replays")
        out.pop("hop_faults_injected")
        out.pop("hop_retries")
        out.pop("speculative_wins")
        out.pop("deadline_misses")
        return out

    def transport_dict(self) -> Dict[str, int]:
        """Physical IPC / checkpoint volume (executor-dependent).

        ``ipc_bytes`` is what the process/shm executors pickled across
        the process boundary for rounds that actually dispatched to
        workers (machine state out, results back);
        ``shm_bytes_mapped``/``shm_segments`` is the array volume the
        shm executor placed in shared-memory segments instead;
        ``checkpoint_bytes`` is the model-word volume (at 8 bytes/word)
        the checkpoint layer stored.  All are 0 under serial/thread
        execution with checkpointing off.
        """
        return {
            "ipc_rounds": self.ipc_rounds,
            "ipc_bytes_shipped": self.ipc_bytes_shipped,
            "ipc_bytes_returned": self.ipc_bytes_returned,
            "ipc_bytes": self.ipc_bytes_shipped + self.ipc_bytes_returned,
            "shm_bytes_mapped": self.shm_bytes_mapped,
            "shm_segments": self.shm_segments,
            "checkpoint_snapshots": self.checkpoint_snapshots,
            "checkpoint_deltas": self.checkpoint_deltas,
            "checkpoint_bytes": self.checkpoint_bytes,
        }

    def budget_dict(self) -> Dict[str, int]:
        """Communication-budget layer counters (policy-dependent).

        All zero when no :class:`~repro.mpc.budget.CommBudget` is
        attached.  With one attached, ``comm_waves`` equals ``rounds``
        in report/enforce mode and exceeds it by the number of extra
        delivery waves adapt mode inserted.  Excluded from
        ``as_dict``/``core_dict`` so budget policy never perturbs the
        model-level bit-identity contract.
        """
        return {
            "comm_waves": self.comm_waves,
            "budget_overruns": self.budget_overruns,
            "budget_splits": self.budget_splits,
            "oversize_messages": self.oversize_messages,
        }

    def update_dict(self) -> Dict[str, int]:
        """Incremental-maintenance counters (dynamic HST updates).

        All zero unless mutations ran through
        :mod:`repro.serve.maintenance`.  ``update_cells_touched`` /
        ``update_levels_repartitioned`` sum the per-mutation
        :class:`~repro.tree.dynamic.UpdateReport` numbers.
        """
        return {
            "updates_applied": self.updates_applied,
            "update_cells_touched": self.update_cells_touched,
            "update_levels_repartitioned": self.update_levels_repartitioned,
        }

    def merged_with(self, other: "CostReport") -> "CostReport":
        """Combine two sequential computations (rounds add, peaks max).

        Merges every layer: model counters, the per-round series
        (``round_log``, with the second computation's round indices
        shifted past the first so the merged series stays monotone), the
        fault layer, the transport layer, and the budget layer — so a
        pipeline's combined report (e.g. FJLT + embedding in
        ``repro.core.pipeline``) is drillable round by round, not just
        in aggregate.
        """
        merged = CostReport(
            num_machines=max(self.num_machines, other.num_machines),
            local_memory=max(self.local_memory, other.local_memory),
        )
        merged.rounds = self.rounds + other.rounds
        merged.messages = self.messages + other.messages
        merged.comm_words = self.comm_words + other.comm_words
        merged.max_local_words = max(self.max_local_words, other.max_local_words)
        merged.max_round_comm_words = max(
            self.max_round_comm_words, other.max_round_comm_words
        )
        merged.peak_total_resident_words = max(
            self.peak_total_resident_words, other.peak_total_resident_words
        )
        shift = self.rounds
        merged.round_log = list(self.round_log) + [
            replace(rec, index=rec.index + shift) for rec in other.round_log
        ]
        merged.faults_injected = self.faults_injected + other.faults_injected
        merged.recovery_replays = self.recovery_replays + other.recovery_replays
        merged.hop_faults_injected = (
            self.hop_faults_injected + other.hop_faults_injected
        )
        merged.hop_retries = self.hop_retries + other.hop_retries
        merged.speculative_wins = self.speculative_wins + other.speculative_wins
        merged.deadline_misses = self.deadline_misses + other.deadline_misses
        merged.fault_log = list(self.fault_log) + [
            replace(rec, round_index=rec.round_index + shift)
            for rec in other.fault_log
        ]
        merged.ipc_rounds = self.ipc_rounds + other.ipc_rounds
        merged.ipc_bytes_shipped = self.ipc_bytes_shipped + other.ipc_bytes_shipped
        merged.ipc_bytes_returned = (
            self.ipc_bytes_returned + other.ipc_bytes_returned
        )
        merged.shm_bytes_mapped = self.shm_bytes_mapped + other.shm_bytes_mapped
        merged.shm_segments = self.shm_segments + other.shm_segments
        merged.checkpoint_snapshots = (
            self.checkpoint_snapshots + other.checkpoint_snapshots
        )
        merged.checkpoint_deltas = self.checkpoint_deltas + other.checkpoint_deltas
        merged.checkpoint_bytes = self.checkpoint_bytes + other.checkpoint_bytes
        merged.comm_waves = self.comm_waves + other.comm_waves
        merged.budget_overruns = self.budget_overruns + other.budget_overruns
        merged.budget_splits = self.budget_splits + other.budget_splits
        merged.oversize_messages = self.oversize_messages + other.oversize_messages
        merged.budget_log = list(self.budget_log) + [
            replace(rec, round_index=rec.round_index + shift)
            for rec in other.budget_log
        ]
        merged.updates_applied = self.updates_applied + other.updates_applied
        merged.update_cells_touched = (
            self.update_cells_touched + other.update_cells_touched
        )
        merged.update_levels_repartitioned = (
            self.update_levels_repartitioned + other.update_levels_repartitioned
        )
        return merged
