"""Exception hierarchy for the MPC simulator.

Every violation of the model's resource constraints surfaces as a typed
exception so tests and benchmarks can assert that an algorithm stays
within its declared budget (strict mode) or merely record the overshoot
(lenient mode).
"""

from __future__ import annotations


class MPCError(RuntimeError):
    """Base class for all MPC-model violations and failures."""


class LocalMemoryExceeded(MPCError):
    """A machine's resident storage grew beyond its local memory budget."""

    def __init__(self, machine_id: int, used: int, budget: int, context: str = "") -> None:
        self.machine_id = machine_id
        self.used = used
        self.budget = budget
        suffix = f" during {context}" if context else ""
        super().__init__(
            f"machine {machine_id} holds {used} words, exceeding its local "
            f"memory budget of {budget} words{suffix}"
        )


class CommunicationOverflow(MPCError):
    """A machine sent or received more words in one round than its memory."""

    def __init__(self, machine_id: int, direction: str, volume: int, budget: int) -> None:
        self.machine_id = machine_id
        self.direction = direction
        self.volume = volume
        self.budget = budget
        super().__init__(
            f"machine {machine_id} attempted to {direction} {volume} words in a "
            f"single round, exceeding its local memory budget of {budget} words"
        )


class CommBudgetExceeded(MPCError):
    """A machine broke the configured communication budget (enforce mode).

    Distinct from :class:`CommunicationOverflow` (the *model's* local
    memory line, which still applies in every mode): this is the caller's
    tighter :class:`~repro.mpc.budget.CommBudget` line, and it carries
    the round/phase coordinates so tests and operators can pinpoint the
    offending step.  Raised regardless of ``strict`` — enforce *is* the
    budget's own strictness policy.
    """

    def __init__(
        self,
        machine_id: int,
        direction: str,
        volume: int,
        budget: int,
        round_index: int,
        context: str = "",
    ) -> None:
        self.machine_id = machine_id
        self.direction = direction
        self.volume = volume
        self.budget = budget
        self.round_index = round_index
        self.context = context
        suffix = f" during {context}" if context else ""
        super().__init__(
            f"machine {machine_id} attempted to {direction} {volume} words in "
            f"round {round_index}{suffix}, exceeding the communication budget "
            f"of {budget} words"
        )


class RoundLimitExceeded(MPCError):
    """The computation used more rounds than the configured limit."""

    def __init__(self, rounds: int, limit: int) -> None:
        self.rounds = rounds
        self.limit = limit
        super().__init__(f"computation used {rounds} rounds, exceeding limit {limit}")


class StorageIsolationViolation(MPCError):
    """A step function mutated a machine that was not participating.

    Step functions may only touch the machine they are handed; reaching
    into another machine's storage (via a closure over the cluster, say)
    silently breaks the model *and* is executor-dependent — a worker
    process would mutate a throwaway copy.  The cluster snapshots
    non-participants' resident words around restricted rounds and raises
    this when they changed.
    """

    def __init__(self, machine_id: int, before: int, after: int, context: str = "") -> None:
        self.machine_id = machine_id
        self.before = before
        self.after = after
        suffix = f" during {context}" if context else ""
        super().__init__(
            f"non-participant machine {machine_id} changed from {before} to "
            f"{after} resident words{suffix}: step functions must only mutate "
            f"the machine they receive (storage isolation violation)"
        )


class ExecutorStepError(MPCError):
    """A step function is incompatible with the selected round executor.

    Raised by :class:`repro.mpc.executor.ProcessExecutor` when a step
    (or a payload it references) cannot be pickled to a worker process.
    Step functions must be module-level callables with arguments bound
    via :func:`functools.partial`.
    """


class WorkerDied(MPCError):
    """A machine's worker died mid-round (injected or genuine).

    The *retryable* executor failure: under the process executor it wraps
    ``concurrent.futures.process.BrokenProcessPool`` (a worker process
    exited without returning its batch), and under the serial/thread
    executors it is what an injected ``worker_death`` fault raises to
    simulate the same event.  A cluster with recovery enabled catches it,
    restores the round's pre-state, and replays; without recovery it
    propagates — but the shared process pool is discarded either way, so
    later clusters get a fresh pool instead of the poisoned one.
    """

    def __init__(self, round_index: int, machine_id: "int | None" = None) -> None:
        self.round_index = round_index
        self.machine_id = machine_id
        who = f"machine {machine_id}" if machine_id is not None else "a worker"
        super().__init__(
            f"{who} died during round {round_index} before returning its state"
        )


class RecoveryExhausted(MPCError):
    """Round recovery gave up: a fault kept firing past the retry cap.

    Carries the coordinates a postmortem needs — which machine, which
    round, which fault kind, how many replays were attempted, and (for
    hop-level transport faults) which delivery hop — so tests and
    operators can assert on the exact failure, not a string.  ``hop`` is
    ``None`` for machine-granular (step-level) exhaustion; for a
    hop-level failure it is the delivery hop index and ``machine_id``
    is the destination machine whose copy never arrived cleanly.
    """

    def __init__(
        self,
        machine_id: "int | None",
        round_index: int,
        kind: str,
        attempts: int,
        context: str = "",
        hop: "int | None" = None,
    ) -> None:
        self.machine_id = machine_id
        self.round_index = round_index
        self.kind = kind
        self.attempts = attempts
        self.hop = hop
        who = f"machine {machine_id}" if machine_id is not None else "the round"
        where = f" (delivery hop {hop})" if hop is not None else ""
        suffix = f" during {context}" if context else ""
        super().__init__(
            f"recovery exhausted after {attempts} attempts: {who} kept failing "
            f"with {kind!r} faults in round {round_index}{where}{suffix}"
        )


class InvalidAddress(MPCError):
    """A message was addressed to a machine id outside the cluster."""

    def __init__(self, dest: int, num_machines: int) -> None:
        self.dest = dest
        self.num_machines = num_machines
        super().__init__(
            f"message addressed to machine {dest}, but cluster has machines "
            f"0..{num_machines - 1}"
        )
