"""Exception hierarchy for the MPC simulator.

Every violation of the model's resource constraints surfaces as a typed
exception so tests and benchmarks can assert that an algorithm stays
within its declared budget (strict mode) or merely record the overshoot
(lenient mode).
"""

from __future__ import annotations


class MPCError(RuntimeError):
    """Base class for all MPC-model violations and failures."""


class LocalMemoryExceeded(MPCError):
    """A machine's resident storage grew beyond its local memory budget."""

    def __init__(self, machine_id: int, used: int, budget: int, context: str = ""):
        self.machine_id = machine_id
        self.used = used
        self.budget = budget
        suffix = f" during {context}" if context else ""
        super().__init__(
            f"machine {machine_id} holds {used} words, exceeding its local "
            f"memory budget of {budget} words{suffix}"
        )


class CommunicationOverflow(MPCError):
    """A machine sent or received more words in one round than its memory."""

    def __init__(self, machine_id: int, direction: str, volume: int, budget: int):
        self.machine_id = machine_id
        self.direction = direction
        self.volume = volume
        self.budget = budget
        super().__init__(
            f"machine {machine_id} attempted to {direction} {volume} words in a "
            f"single round, exceeding its local memory budget of {budget} words"
        )


class RoundLimitExceeded(MPCError):
    """The computation used more rounds than the configured limit."""

    def __init__(self, rounds: int, limit: int):
        self.rounds = rounds
        self.limit = limit
        super().__init__(f"computation used {rounds} rounds, exceeding limit {limit}")


class InvalidAddress(MPCError):
    """A message was addressed to a machine id outside the cluster."""

    def __init__(self, dest: int, num_machines: int):
        self.dest = dest
        self.num_machines = num_machines
        super().__init__(
            f"message addressed to machine {dest}, but cluster has machines "
            f"0..{num_machines - 1}"
        )
