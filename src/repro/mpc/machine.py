"""A single simulated MPC machine: local key-value storage plus an inbox."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.mpc.message import Message
from repro.util.sizing import words


class Machine:
    """One machine in a simulated MPC cluster.

    Storage is a flat ``str -> object`` mapping.  The machine itself is
    passive: all orchestration (round structure, message delivery,
    constraint checks) lives in :class:`repro.mpc.cluster.Cluster`.
    """

    __slots__ = ("machine_id", "_store", "inbox")

    def __init__(self, machine_id: int) -> None:
        self.machine_id = machine_id
        self._store: Dict[str, Any] = {}
        self.inbox: List[Message] = []

    # -- storage ------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (overwrites)."""
        self._store[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """Read a stored value, or ``default`` when absent."""
        return self._store.get(key, default)

    def pop(self, key: str, default: Any = None) -> Any:
        """Remove and return a stored value."""
        return self._store.pop(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def keys(self) -> Iterator[str]:
        return iter(self._store.keys())

    def clear(self) -> None:
        """Drop all stored values (not the inbox)."""
        self._store.clear()

    # -- pickling -------------------------------------------------------

    # Machines are shipped to worker processes by the process round
    # executor (``__slots__`` classes need explicit state methods).  The
    # whole state is (id, storage, inbox); word sizes are properties of
    # the stored values and survive the round trip unchanged.

    def __getstate__(self) -> Tuple[int, Dict[str, Any], List[Message]]:
        return (self.machine_id, self._store, self.inbox)

    def __setstate__(self, state: Tuple[int, Dict[str, Any], List[Message]]) -> None:
        self.machine_id, self._store, self.inbox = state

    # -- accounting ----------------------------------------------------

    def storage_words(self) -> int:
        """Words of resident storage (keys are charged too)."""
        return sum(words(k) + words(v) for k, v in self._store.items())

    def inbox_words(self) -> int:
        """Words currently sitting in the inbox awaiting processing."""
        return sum(m.size_words for m in self.inbox)

    # -- inbox helpers --------------------------------------------------

    def take_inbox(self, tag: str | None = None) -> List[Message]:
        """Remove and return inbox messages (optionally only one tag).

        Messages are returned ordered by source machine id, which gives
        deterministic reassembly of sharded data.
        """
        if tag is None:
            taken, self.inbox = self.inbox, []
        else:
            taken = [m for m in self.inbox if m.tag == tag]
            self.inbox = [m for m in self.inbox if m.tag != tag]
        taken.sort(key=lambda m: (m.src, m.tag))
        return taken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(id={self.machine_id}, keys={sorted(self._store)}, "
            f"inbox={len(self.inbox)})"
        )
