"""A single simulated MPC machine: local key-value storage plus an inbox.

Storage mutations are tracked in a **change journal** — per machine, the
set of keys written and deleted since the journal was last reset, plus a
flag recording whether the inbox changed.  The journal powers two
volume optimizations (see docs/MPC_MODEL.md):

* **delta shipping** — the process executor ships only the journaled
  keys back to the coordinator instead of the whole store;
* **delta checkpoints** — :class:`~repro.mpc.checkpoint.CheckpointManager`
  records per-round deltas against a full base snapshot.

The journal is bookkeeping *outside* the model: it is never charged
words, never pickled (worker copies start with a fresh journal), and
resetting it does not touch stored values.  The one contract it imposes
on step authors: a step that mutates a stored value **in place** (e.g.
writes into an array obtained via :meth:`get`) must :meth:`put` it back
so the mutation is journaled — every step in :mod:`repro` already does.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Set, Tuple

from repro.mpc.arena import StoredArray
from repro.mpc.message import Message
from repro.util.sizing import words

_MISSING = object()


class Machine:
    """One machine in a simulated MPC cluster.

    Storage is a flat ``str -> object`` mapping.  The machine itself is
    passive: all orchestration (round structure, message delivery,
    constraint checks) lives in :class:`repro.mpc.cluster.Cluster`.
    """

    __slots__ = ("machine_id", "_store", "inbox", "_j_written", "_j_deleted",
                 "_j_inbox", "_arena")

    def __init__(self, machine_id: int) -> None:
        self.machine_id = machine_id
        self._store: Dict[str, Any] = {}
        self.inbox: List[Message] = []
        self._j_written: Set[str] = set()
        self._j_deleted: Set[str] = set()
        self._j_inbox: bool = False
        # Under the shm executor large arrays live in a shared-memory
        # arena and the store/inbox hold StoredArray *handles*; the
        # resolver (an Arena on the coordinator, a WorkerArena in pool
        # workers) turns them back into numpy views on read.  ``None``
        # everywhere else — the plain dict path is untouched.
        self._arena: Any = None

    # -- storage ------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (overwrites)."""
        self._store[key] = value
        self._j_written.add(key)
        self._j_deleted.discard(key)

    def get(self, key: str, default: Any = None) -> Any:
        """Read a stored value, or ``default`` when absent.

        A value held as a shared-memory handle resolves to a live numpy
        view — step code sees arrays either way, and in-place mutations
        through the view hit the segment directly (put the value back,
        as always, so the write is journaled).  Containers are resolved
        recursively: a dict whose arrays were promoted reads back as a
        dict of views.
        """
        value = self._store.get(key, _MISSING)
        if value is _MISSING:
            return default
        if self._arena is not None and type(value) in (
            StoredArray, dict, list, tuple
        ):
            return self._arena.resolve_value(value)
        return value

    def pop(self, key: str, default: Any = None) -> Any:
        """Remove and return a stored value."""
        if key in self._store:
            self._j_deleted.add(key)
            self._j_written.discard(key)
        return self._store.pop(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def keys(self) -> Iterator[str]:
        return iter(self._store.keys())

    def clear(self) -> None:
        """Drop all stored values (not the inbox)."""
        self._j_deleted.update(self._store)
        self._j_written.difference_update(self._store)
        self._store.clear()

    # -- change journal -------------------------------------------------

    def reset_journal(self) -> None:
        """Forget tracked changes (stored values are untouched)."""
        self._j_written.clear()
        self._j_deleted.clear()
        self._j_inbox = False

    def journal(self) -> Tuple[Set[str], Set[str], bool]:
        """``(written, deleted, inbox_changed)`` since the last reset.

        The sets are live views — callers that keep them must copy.
        A key appears in at most one set (a put after a pop moves it
        back to *written* and vice versa).
        """
        return self._j_written, self._j_deleted, self._j_inbox

    def journal_is_empty(self) -> bool:
        return not (self._j_written or self._j_deleted or self._j_inbox)

    def mark_inbox_dirty(self) -> None:
        """Record that the inbox changed (delivery or ``take_inbox``)."""
        self._j_inbox = True

    def merge_journal(
        self, written: Iterable[str], deleted: Iterable[str], inbox_dirty: bool
    ) -> None:
        """Fold a shipped journal (from a worker copy) into this one."""
        for key in written:
            self._j_written.add(key)
            self._j_deleted.discard(key)
        for key in deleted:
            self._j_deleted.add(key)
            self._j_written.discard(key)
        if inbox_dirty:
            self._j_inbox = True

    # -- pickling -------------------------------------------------------

    # Machines are shipped to worker processes by the process round
    # executor (``__slots__`` classes need explicit state methods).  The
    # whole state is (id, storage, inbox); word sizes are properties of
    # the stored values and survive the round trip unchanged.  The
    # change journal is deliberately *not* shipped — a worker copy
    # starts fresh, so its journal records exactly what the step
    # touched (the delta-shipping payload).

    # The arena resolver is process-local (it wraps live shared-memory
    # attachments) and is likewise not shipped; the worker installs its
    # own before running the step.

    def __getstate__(self) -> Tuple[int, Dict[str, Any], List[Message]]:
        return (self.machine_id, self._store, self.inbox)

    def __setstate__(self, state: Tuple[int, Dict[str, Any], List[Message]]) -> None:
        self.machine_id, self._store, self.inbox = state
        self._j_written = set()
        self._j_deleted = set()
        self._j_inbox = False
        self._arena = None

    # -- accounting ----------------------------------------------------

    def storage_words(self) -> int:
        """Words of resident storage (keys are charged too)."""
        return sum(words(k) + words(v) for k, v in self._store.items())

    def inbox_words(self) -> int:
        """Words currently sitting in the inbox awaiting processing."""
        return sum(m.size_words for m in self.inbox)

    # -- inbox helpers --------------------------------------------------

    def take_inbox(self, tag: str | None = None) -> List[Message]:
        """Remove and return inbox messages (optionally only one tag).

        Messages are returned ordered by source machine id, which gives
        deterministic reassembly of sharded data.
        """
        if tag is None:
            taken, self.inbox = self.inbox, []
        else:
            taken = [m for m in self.inbox if m.tag == tag]
            self.inbox = [m for m in self.inbox if m.tag != tag]
        if taken:
            self._j_inbox = True
        taken.sort(key=lambda m: (m.src, m.tag))
        if self._arena is not None:
            # Handle payloads resolve to live views on the way out, so
            # step code always receives arrays.  Messages left in the
            # inbox keep their handles (nothing to re-pack on shipping).
            taken = [self._arena.resolve_message(m) for m in taken]
        return taken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(id={self.machine_id}, keys={sorted(self._store)}, "
            f"inbox={len(self.inbox)})"
        )
