"""Typed result objects shared by every ``mpc_*`` entry point.

Historically each entry point grew its own ad-hoc return shape —
``mpc_tree_embedding`` a bespoke dataclass, ``mpc_fjlt`` /
``mpc_dense_jl`` bare ``(array, cluster)`` tuples, ``mpc_blocked_fwht``
an ``(array, report)`` tuple.  This module normalizes them: every entry
point returns a dataclass with the same three attributes where they
apply —

* ``.tree`` — the structural output (``None`` for transforms);
* ``.report`` — the :class:`~repro.mpc.accounting.CostReport`;
* ``.metrics`` — the attached :class:`~repro.mpc.metrics.MetricsLog`
  (or ``None`` when observability was off) —

plus ``__iter__`` so historical tuple unpacking (``embedded, cluster =
mpc_fjlt(...)``) keeps working unchanged.  See docs/API.md ("Result
objects") for the full shape table and the deprecation policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.mpc.accounting import CostReport
from repro.mpc.metrics import MetricsLog
from repro.tree.hst import HSTree

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import weight
    from repro.mpc.cluster import Cluster
    from repro.tree.dynamic import UpdateReport

__all__ = [
    "EmbeddingResult",
    "TransformResult",
    "FWHTResult",
    "DynamicUpdateResult",
    "QueryResult",
]


def _cluster_metrics(cluster: "Optional[Cluster]") -> Optional[MetricsLog]:
    return cluster.metrics if cluster is not None else None


@dataclass
class EmbeddingResult:
    """Output of :func:`repro.core.mpc_embedding.mpc_tree_embedding`.

    ``r`` / ``num_grids`` / ``scales`` record the realized parameters
    (needed to reproduce the build); ``cluster`` is the simulator the
    build ran on, kept alive so serving layers can reuse it.
    """

    tree: HSTree
    report: CostReport
    r: int
    num_grids: int
    scales: np.ndarray
    cluster: "Cluster"

    @property
    def rounds(self) -> int:
        return self.report.rounds

    @property
    def metrics(self) -> Optional[MetricsLog]:
        return _cluster_metrics(self.cluster)

    def __iter__(self) -> Iterator:
        """Tuple back-compat: ``tree, report = mpc_tree_embedding(...)``."""
        return iter((self.tree, self.report))


@dataclass
class TransformResult:
    """Output of ``mpc_fjlt`` / ``mpc_dense_jl``.

    Unpacks as the historical ``(embedded, cluster)`` pair.
    """

    embedded: np.ndarray
    cluster: "Cluster"
    tree: Optional[HSTree] = None

    @property
    def report(self) -> CostReport:
        return self.cluster.report()

    @property
    def metrics(self) -> Optional[MetricsLog]:
        return _cluster_metrics(self.cluster)

    def __iter__(self) -> Iterator:
        """Tuple back-compat: ``embedded, cluster = mpc_fjlt(...)``."""
        return iter((self.embedded, self.cluster))


@dataclass
class FWHTResult:
    """Output of ``mpc_blocked_fwht``; unpacks as ``(transformed, report)``."""

    transformed: np.ndarray
    report: CostReport
    cluster: "Optional[Cluster]" = None
    tree: Optional[HSTree] = None

    @property
    def metrics(self) -> Optional[MetricsLog]:
        return _cluster_metrics(self.cluster)

    def __iter__(self) -> Iterator:
        return iter((self.transformed, self.report))


@dataclass
class DynamicUpdateResult:
    """Output of ``mpc_dynamic_insert`` / ``mpc_dynamic_delete``.

    ``tree`` is the maintained tree after the mutation (carrying its
    refreshed :class:`~repro.tree.dynamic.MaintenancePlan`); ``update``
    is the per-mutation cost accounting (cells touched, levels
    re-partitioned); ``report`` the cumulative cluster report with the
    update layer folded in (``CostReport.update_dict()``).
    """

    tree: HSTree
    update: "UpdateReport"
    report: CostReport
    cluster: "Cluster"

    @property
    def metrics(self) -> Optional[MetricsLog]:
        return _cluster_metrics(self.cluster)

    def __iter__(self) -> Iterator:
        return iter((self.tree, self.update))


@dataclass
class QueryResult:
    """One answered query from :class:`repro.serve.service.EmbeddingService`.

    ``kind`` is ``"nearest"`` / ``"range"`` / ``"distance"``; exactly
    the fields that apply to the kind are populated (`neighbor`/`distance`
    for nearest, ``indices`` for range, ``distance`` for distance).
    ``version`` is the tree version the answer was computed against and
    ``latency_ms`` the measured enqueue-to-answer latency.
    """

    kind: str
    source: int
    distance: Optional[float] = None
    neighbor: Optional[int] = None
    indices: Optional[np.ndarray] = field(default=None, repr=False)
    version: int = 0
    latency_ms: float = 0.0
