"""Command-line interface.

Subcommands::

    python -m repro generate --kind clusters --n 256 --d 8 --delta 1024 \
        --seed 0 --out points.npy
    python -m repro embed points.npy --backend sequential --r 2 --seed 1 \
        --out tree.npz
    python -m repro report tree.npz points.npy
    python -m repro figure1 --out-dir figures/

``embed`` stores the tree as an ``.npz`` of (label_matrix,
level_weights); ``report`` recomputes domination/distortion from the
stored tree against the point file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Massively parallel tree embeddings for high dimensional "
            "spaces (SPAA 2023 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic point set (.npy)")
    gen.add_argument("--kind", default="clusters",
                     choices=["uniform", "clusters", "corners", "line", "circle"])
    gen.add_argument("--n", type=int, default=256)
    gen.add_argument("--d", type=int, default=8)
    gen.add_argument("--delta", type=int, default=1024)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)

    emb = sub.add_parser("embed", help="embed a point set into a tree (.npz)")
    emb.add_argument("points", help="input .npy point file")
    emb.add_argument("--backend", default="sequential",
                     choices=["sequential", "mpc", "pipeline"])
    emb.add_argument("--method", default="hybrid",
                     choices=["hybrid", "ball", "grid"])
    emb.add_argument("--r", type=int, default=None)
    emb.add_argument("--seed", type=int, default=0)
    emb.add_argument("--xi", type=float, default=0.3,
                     help="JL distortion (pipeline backend)")
    emb.add_argument("--out", required=True)

    rep = sub.add_parser("report", help="distortion report for a stored tree")
    rep.add_argument("tree", help="input .npz tree file")
    rep.add_argument("points", help="the point file the tree embeds")

    fig = sub.add_parser("figure1", help="render Figure 1 SVG panels")
    fig.add_argument("--out-dir", default="figure1-output")
    fig.add_argument("--n", type=int, default=180)
    fig.add_argument("--w", type=float, default=4.0)
    fig.add_argument("--seed", type=int, default=0)

    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.data import synthetic

    makers = {
        "uniform": lambda: synthetic.uniform_lattice(
            args.n, args.d, args.delta, seed=args.seed, unique=True
        ),
        "clusters": lambda: synthetic.gaussian_clusters(
            args.n, args.d, args.delta, seed=args.seed
        ),
        "corners": lambda: synthetic.hypercube_corners(
            args.n, args.d, args.delta, seed=args.seed
        ),
        "line": lambda: synthetic.line_points(
            args.n, args.d, args.delta, seed=args.seed
        ),
        "circle": lambda: synthetic.circle_points(
            args.n, args.d, args.delta, seed=args.seed
        ),
    }
    points = makers[args.kind]()
    np.save(args.out, points)
    print(f"wrote {points.shape[0]} x {points.shape[1]} points to {args.out}")
    return 0


def cmd_embed(args: argparse.Namespace) -> int:
    from repro.core.embedding import embed

    points = np.load(args.points)
    kwargs = {}
    if args.backend == "pipeline":
        kwargs["xi"] = args.xi
    if args.backend == "sequential":
        kwargs["method"] = args.method
    emb = embed(points, backend=args.backend, r=args.r, seed=args.seed, **kwargs)
    np.savez(
        args.out,
        label_matrix=emb.tree.label_matrix,
        level_weights=emb.tree.level_weights,
    )
    print(
        f"embedded {emb.n} points: {emb.tree.num_levels} levels, "
        f"backend={emb.backend}"
    )
    if emb.costs:
        for stage, cost in emb.costs.items():
            print(f"  costs[{stage}]: {cost}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.distortion import distortion_report
    from repro.tree.hst import HSTree

    data = np.load(args.tree)
    points = np.load(args.points)
    tree = HSTree(data["label_matrix"], data["level_weights"], points=points)
    rep = distortion_report(tree, points)
    for key, value in rep.as_dict().items():
        print(f"{key:24s} {value:.6g}" if isinstance(value, float)
              else f"{key:24s} {value}")
    if rep.domination_min < 1.0:
        print("WARNING: domination violated", file=sys.stderr)
        return 1
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    from repro.viz.partitions import render_figure1

    written = render_figure1(args.out_dir, n=args.n, w=args.w, seed=args.seed)
    for name, path in written.items():
        print(f"wrote {path}")
    return 0


COMMANDS = {
    "generate": cmd_generate,
    "embed": cmd_embed,
    "report": cmd_report,
    "figure1": cmd_figure1,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
