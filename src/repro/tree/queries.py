"""Query primitives on tree embeddings.

The compactness of an HST makes several queries cheap that are expensive
in the original metric; these are the operations downstream users
(clustering, dedup, outlier detection) typically run on the embedding:

* :func:`tree_nearest` — approximate nearest neighbor (exact in the
  tree metric): the closest co-clustered point at the deepest shared
  level;
* :func:`range_query` — all points within a tree-metric radius;
* :func:`closest_pair` — the globally closest pair under the tree
  metric, found in O(n L) time via deepest non-singleton clusters.

Tree-metric answers relate to Euclidean answers through the embedding
guarantees: distances never shrink (domination), so a tree range query
with radius R is a *superset-free* filter — every reported point is
within R in the tree, hence candidates for Euclidean radius R only need
checking among them... and by the distortion bound the true nearest
neighbor is within an O(distortion) factor of the tree answer.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tree.hst import HSTree
from repro.tree.metric import tree_distances_from_point
from repro.util.validation import require


def tree_nearest(tree: HSTree, i: int) -> Tuple[int, float]:
    """Nearest neighbor of point ``i`` under the tree metric.

    Exact in the tree metric (ties broken by lowest index); an
    O(distortion)-approximate Euclidean nearest neighbor by the
    embedding guarantee.  Returns ``(index, tree_distance)``.
    """
    require(0 <= i < tree.n, f"point index out of range: {i}")
    require(tree.n >= 2, "need at least two points")
    dists = tree_distances_from_point(tree, i)
    dists[i] = np.inf
    j = int(np.argmin(dists))
    return j, float(dists[j])


def range_query(tree: HSTree, i: int, radius: float) -> np.ndarray:
    """All points within tree-metric ``radius`` of point ``i``.

    Because the tree dominates the Euclidean metric, the result is a
    *subset* of the Euclidean ball of the same radius — a sound
    candidate filter with no false Euclidean positives.
    """
    require(radius >= 0, f"radius must be >= 0, got {radius}")
    dists = tree_distances_from_point(tree, i)
    hits = np.flatnonzero(dists <= radius)
    return hits[hits != i]


def closest_pair(tree: HSTree) -> Tuple[int, int, float]:
    """The closest pair of distinct points under the tree metric.

    The pair separated deepest in the hierarchy: find the deepest level
    with a non-singleton cluster and take two of its members.  O(n L)
    rather than O(n^2).
    """
    require(tree.n >= 2, "need at least two points")
    labels = tree.label_matrix
    suffix = tree.suffix_weights
    for lvl in range(tree.num_levels, 0, -1):
        row = labels[lvl]
        counts = np.bincount(row)
        fat = np.flatnonzero(counts > 1)
        if fat.size:
            members = np.flatnonzero(row == fat[0])[:2]
            if lvl == tree.num_levels:
                dist = 0.0  # duplicates sharing a leaf
            else:
                dist = float(2.0 * suffix[lvl])
            return int(members[0]), int(members[1]), dist
    # All levels singleton above the root: pair split at level 1.
    return 0, 1, float(2.0 * suffix[0])


def nearest_via_levels(tree: HSTree, i: int) -> Optional[int]:
    """A co-clustered companion at the deepest level sharing a cluster.

    Cheaper than :func:`tree_nearest` (no distance vector): walks label
    rows from the bottom and returns the first companion found, which is
    *a* tree-nearest neighbor (all points first co-clustered at the same
    level are equidistant from ``i``).  Returns None when ``i`` never
    shares a cluster below the root — then every other point is
    tree-nearest.
    """
    require(0 <= i < tree.n, f"point index out of range: {i}")
    labels = tree.label_matrix
    for lvl in range(tree.num_levels, 0, -1):
        row = labels[lvl]
        mates = np.flatnonzero(row == row[i])
        if mates.size > 1:
            return int(mates[mates != i][0])
    return None
