"""Query primitives on tree embeddings.

The compactness of an HST makes several queries cheap that are expensive
in the original metric; these are the operations downstream users
(clustering, dedup, outlier detection) typically run on the embedding:

* :func:`tree_nearest` — approximate nearest neighbor (exact in the
  tree metric): the closest co-clustered point at the deepest shared
  level;
* :func:`range_query` — all points within a tree-metric radius;
* :func:`closest_pair` — the globally closest pair under the tree
  metric, found in O(n L) time via deepest non-singleton clusters.

Tree-metric answers relate to Euclidean answers through the embedding
guarantees: distances never shrink (domination), so a tree range query
with radius R is a *superset-free* filter — every reported point is
within R in the tree, hence candidates for Euclidean radius R only need
checking among them... and by the distortion bound the true nearest
neighbor is within an O(distortion) factor of the tree answer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.tree.hst import HSTree
from repro.tree.metric import (
    distances_for_separation,
    separation_levels,
    tree_distances_from_point,
)
from repro.util.validation import require


def tree_nearest(tree: HSTree, i: int) -> Tuple[int, float]:
    """Nearest neighbor of point ``i`` under the tree metric.

    Exact in the tree metric (ties broken by lowest index); an
    O(distortion)-approximate Euclidean nearest neighbor by the
    embedding guarantee.  Returns ``(index, tree_distance)``.
    """
    require(0 <= i < tree.n, f"point index out of range: {i}")
    require(tree.n >= 2, "need at least two points")
    dists = tree_distances_from_point(tree, i)
    dists[i] = np.inf
    j = int(np.argmin(dists))
    return j, float(dists[j])


def range_query(tree: HSTree, i: int, radius: float) -> np.ndarray:
    """All points within tree-metric ``radius`` of point ``i``.

    Because the tree dominates the Euclidean metric, the result is a
    *subset* of the Euclidean ball of the same radius — a sound
    candidate filter with no false Euclidean positives.
    """
    require(radius >= 0, f"radius must be >= 0, got {radius}")
    dists = tree_distances_from_point(tree, i)
    hits = np.flatnonzero(dists <= radius)
    return hits[hits != i]


def closest_pair(tree: HSTree) -> Tuple[int, int, float]:
    """The closest pair of distinct points under the tree metric.

    The pair separated deepest in the hierarchy: find the deepest level
    with a non-singleton cluster and take two of its members.  O(n L)
    rather than O(n^2).
    """
    require(tree.n >= 2, "need at least two points")
    labels = tree.label_matrix
    suffix = tree.suffix_weights
    for lvl in range(tree.num_levels, 0, -1):
        row = labels[lvl]
        counts = np.bincount(row)
        fat = np.flatnonzero(counts > 1)
        if fat.size:
            members = np.flatnonzero(row == fat[0])[:2]
            if lvl == tree.num_levels:
                dist = 0.0  # duplicates sharing a leaf
            else:
                dist = float(2.0 * suffix[lvl])
            return int(members[0]), int(members[1]), dist
    # All levels singleton above the root: pair split at level 1.
    return 0, 1, float(2.0 * suffix[0])


class TreeQueryIndex:
    """Per-level inverted structure for broadcast-grouped batch queries.

    One pass over the label matrix precomputes, per level: cluster
    sizes, each cluster's member list (global indices ascending), and
    each cluster's two smallest member indices.  Batched queries then
    reduce to label lookups — no per-query distance vector — while
    answering *exactly* what the per-point functions answer:

    * :meth:`nearest_batch` matches :func:`tree_nearest` including its
      lowest-index tie-break: the nearest set of ``i`` is its cluster at
      the deepest level where it has a companion (label rows are nested,
      so members there are exactly the minimum-distance points), and
      ``np.argmin`` over the distance vector picks the smallest global
      index in that set — which is ``min1`` (or ``min2`` when ``min1``
      is ``i`` itself).
    * :meth:`range_batch` matches :func:`range_query`: ``dist <= radius``
      iff the pair is still co-clustered at the first level ``t`` whose
      threshold ``2 * suffix_weights[t]`` drops to ``radius`` or below.

    The index is immutable and bound to one tree version; the serving
    layer (:mod:`repro.serve.service`) rebuilds it after each mutation.
    """

    def __init__(self, tree: HSTree):
        require(tree.n >= 2, "need at least two points to answer queries")
        self.tree = tree
        labels = tree.label_matrix
        self._counts: List[np.ndarray] = []
        self._order: List[np.ndarray] = []
        self._starts: List[np.ndarray] = []
        self._min1: List[np.ndarray] = []
        self._min2: List[np.ndarray] = []
        for lvl in range(labels.shape[0]):
            row = labels[lvl]
            num_labels = int(row.max()) + 1
            counts = np.bincount(row, minlength=num_labels)
            # Stable sort: within a label, members stay index-ascending.
            order = np.argsort(row, kind="stable")
            starts = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
            )
            min1 = order[starts]
            second = np.minimum(starts + 1, row.shape[0] - 1)
            min2 = np.where(counts > 1, order[second], -1)
            self._counts.append(counts)
            self._order.append(order)
            self._starts.append(starts)
            self._min1.append(min1)
            self._min2.append(min2)

    def nearest_batch(
        self, sources: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbors, distances)`` for a batch of source indices.

        Element-wise identical to calling :func:`tree_nearest` per
        source (same answers, same tie-breaks).
        """
        tree = self.tree
        src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        require(
            bool((src >= 0).all()) and bool((src < tree.n).all()),
            "source index out of range",
        )
        labels = tree.label_matrix
        num_levels = tree.num_levels
        # Deepest label row where each source has a companion; row 0
        # (the root) always qualifies since n >= 2.
        deepest = np.zeros(src.shape, dtype=np.int64)
        undecided = np.ones(src.shape, dtype=bool)
        for lvl in range(num_levels, 0, -1):
            if not undecided.any():
                break
            lab = labels[lvl][src]
            newly = undecided & (self._counts[lvl][lab] > 1)
            deepest[newly] = lvl
            undecided &= ~newly
        neighbors = np.empty(src.shape, dtype=np.int64)
        for lvl in np.unique(deepest):
            mask = deepest == lvl
            lab = labels[lvl][src[mask]]
            first = self._min1[lvl][lab]
            second = self._min2[lvl][lab]
            neighbors[mask] = np.where(first == src[mask], second, first)
        distances = distances_for_separation(tree, deepest + 1)
        return neighbors, distances

    def range_batch(
        self, sources: np.ndarray, radii: np.ndarray
    ) -> List[np.ndarray]:
        """Per-source arrays of points within the tree-metric radius.

        Element-wise identical to :func:`range_query` (sorted indices,
        source excluded).
        """
        tree = self.tree
        src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        rad = np.broadcast_to(
            np.asarray(radii, dtype=np.float64), src.shape
        )
        require(
            bool((src >= 0).all()) and bool((src < tree.n).all()),
            "source index out of range",
        )
        require(bool((rad >= 0).all()), "radii must be >= 0")
        # First level whose distance threshold 2*suffix[t] is <= radius:
        # pairs co-clustered there (and only those) lie within range.
        thresholds = 2.0 * tree.suffix_weights
        levels = np.searchsorted(-thresholds, -rad, side="left")
        levels = np.minimum(levels, tree.num_levels)
        labels = tree.label_matrix
        out: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * src.shape[0]
        for lvl in np.unique(levels):
            counts, order, starts = (
                self._counts[lvl],
                self._order[lvl],
                self._starts[lvl],
            )
            for pos in np.flatnonzero(levels == lvl):
                lab = int(labels[lvl][src[pos]])
                members = order[starts[lab] : starts[lab] + counts[lab]]
                out[pos] = members[members != src[pos]]
        return out

    def distance_batch(
        self, pairs_i: np.ndarray, pairs_j: np.ndarray
    ) -> np.ndarray:
        """Tree distances for index pairs (vectorized, exact)."""
        tree = self.tree
        i = np.atleast_1d(np.asarray(pairs_i, dtype=np.int64))
        j = np.atleast_1d(np.asarray(pairs_j, dtype=np.int64))
        require(i.shape == j.shape, "pair index arrays must align")
        require(
            bool((i >= 0).all()) and bool((i < tree.n).all())
            and bool((j >= 0).all()) and bool((j < tree.n).all()),
            "pair index out of range",
        )
        dists = distances_for_separation(
            tree, separation_levels(tree, i, j)
        )
        dists[i == j] = 0.0
        return dists


def tree_nearest_batch(
    tree: HSTree, sources: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`tree_nearest` (one shared index, same answers)."""
    return TreeQueryIndex(tree).nearest_batch(sources)


def range_query_batch(
    tree: HSTree, sources: np.ndarray, radii: np.ndarray
) -> List[np.ndarray]:
    """Batched :func:`range_query` (one shared index, same answers)."""
    return TreeQueryIndex(tree).range_batch(sources, radii)


def nearest_via_levels(tree: HSTree, i: int) -> Optional[int]:
    """A co-clustered companion at the deepest level sharing a cluster.

    Cheaper than :func:`tree_nearest` (no distance vector): walks label
    rows from the bottom and returns the first companion found, which is
    *a* tree-nearest neighbor (all points first co-clustered at the same
    level are equidistant from ``i``).  Returns None when ``i`` never
    shares a cluster below the root — then every other point is
    tree-nearest.
    """
    require(0 <= i < tree.n, f"point index out of range: {i}")
    labels = tree.label_matrix
    for lvl in range(tree.num_levels, 0, -1):
        row = labels[lvl]
        mates = np.flatnonzero(row == row[i])
        if mates.size > 1:
            return int(mates[mates != i][0])
    return None
