"""Incremental HST maintenance (insert / delete without a full rebuild).

Goranci et al. ("Tree Embedding in High Dimensions: Dynamic and
Massively Parallel", PAPERS.md) observe that the hybrid-partition
recursion is *per-point decomposable*: a point's label path is a pure
function of its own coordinates plus the shared randomness (grid
shifts, scale schedule).  Updating the point set therefore never
requires re-running the geometric work for unchanged points — only the
membership bookkeeping of the cells the changed points touch.

This module implements that for the repo's HSTs.  A build pins a
:class:`MaintenancePlan` — the realized grid shifts, the scale
schedule, the fixed partition parameters, and the cached per-point path
keys.  :func:`apply_insert` runs
:func:`repro.partition.hybrid.ballpart_path_keys` (the *same* kernel
the MPC ballpart round runs) for the new points only, merges the key
columns, and re-factorizes; :func:`apply_delete` drops key columns and
re-factorizes.  Because every stage is shared with the fresh build —
one kernel, one factorization (:func:`~repro.tree.build
.level_rows_from_path_keys`), one refinement tail
(:func:`~repro.tree.build.refine_from_level_rows`) — the maintained
tree is **bit-identical** to a fresh build on the final point set,
provided the fresh build pins the same parameters (``r``, ``num_grids``,
``seed``, ``min_separation``) and the final set keeps the diameter
inside the same power-of-two bracket (so the schedule agrees).  The
bit-identity sweep in ``tests/serve/test_dynamic.py`` asserts exactly
this across all four executors.

Update cost is reported per mutation through :class:`UpdateReport`
(cells touched, levels re-partitioned) and aggregated into
``CostReport.update_dict()`` by the serving entry points
(:mod:`repro.serve.maintenance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.partition.base import CoverageFailure
from repro.partition.hybrid import ballpart_path_keys, pad_for_buckets
from repro.tree.build import (
    build_hst,
    level_rows_from_path_keys,
    refine_from_level_rows,
)
from repro.tree.hst import HSTree
from repro.util.validation import check_points, require

__all__ = [
    "MaintenancePlan",
    "UpdateReport",
    "apply_insert",
    "apply_delete",
    "finish_insert",
    "reindex_uncovered_keys",
]


@dataclass(frozen=True)
class MaintenancePlan:
    """Everything needed to extend a build to new points, pinned.

    ``shifts`` are the realized grid draws ``(L, r, U, k)`` — the
    randomness is *frozen*, not re-drawn, which is what makes updates
    deterministic.  ``path_keys`` is the ``(L, n, r*(k+1))`` key cache
    for the current point set (exactly the concatenated ``T_i`` pieces
    of Algorithm 2's god assembly).  ``transform``, when present, pins a
    seeded FJLT (``{"d", "n", "xi", "k", "q", "seed"}`` as accepted by
    :meth:`repro.jl.fjlt.FJLT.cached`) applied to raw inserts before
    partitioning — how pipeline-built trees keep one projection for
    their whole serving lifetime.
    """

    shifts: np.ndarray
    scales: np.ndarray
    r: int
    k: int
    dim: int
    cell_factor: float
    weight_scale: float
    on_uncovered: str
    path_keys: np.ndarray = field(repr=False)
    transform: Optional[Dict[str, Any]] = None

    @property
    def num_levels(self) -> int:
        return int(self.shifts.shape[0])

    @property
    def num_grids(self) -> int:
        return int(self.shifts.shape[2])

    @property
    def n(self) -> int:
        return int(self.path_keys.shape[1])

    @property
    def key_width(self) -> int:
        return self.r * (self.k + 1)

    def grids_payload(self) -> Dict[str, Any]:
        """The ``embed/grids`` broadcast dict of the original build.

        The serve entry points re-broadcast this onto fresh clusters so
        the in-model insert round reads the identical state the build's
        ballpart round read.
        """
        return {
            "shifts": self.shifts,
            "scales": np.asarray(self.scales),
            "r": self.r,
            "k": self.k,
            "cell_factor": self.cell_factor,
            "on_uncovered": self.on_uncovered,
        }


@dataclass(frozen=True)
class UpdateReport:
    """Cost accounting for one incremental mutation.

    ``cells_touched`` counts, summed over plan levels, the distinct
    cells whose membership changed (cells gaining members on insert,
    losing members on delete); ``total_cells`` counts all distinct
    cells over the same plan levels after the mutation, so
    ``frac_cells_touched`` is the re-partitioning fraction the serving
    benchmark gates (< 10% at 1% churn).  ``paths_recomputed`` counts
    points whose full hybrid partition was re-run (inserted points; 0
    for deletes — their keys were cached).
    """

    kind: str
    points_changed: int
    paths_recomputed: int
    cells_touched: int
    total_cells: int
    levels_repartitioned: int
    num_levels: int
    n_before: int
    n_after: int

    @property
    def frac_cells_touched(self) -> float:
        return self.cells_touched / max(1, self.total_cells)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "points_changed": self.points_changed,
            "paths_recomputed": self.paths_recomputed,
            "cells_touched": self.cells_touched,
            "total_cells": self.total_cells,
            "frac_cells_touched": self.frac_cells_touched,
            "levels_repartitioned": self.levels_repartitioned,
            "num_levels": self.num_levels,
            "n_before": self.n_before,
            "n_after": self.n_after,
        }


def _require_plan(tree: HSTree) -> MaintenancePlan:
    require(
        tree.plan is not None,
        "tree carries no MaintenancePlan — incremental maintenance needs "
        "the default god assembly of mpc_tree_embedding (assembly='god')",
    )
    require(
        tree.points is not None,
        "tree carries no points — maintenance needs coordinates to keep "
        "the coincident-leaf grouping consistent",
    )
    plan: MaintenancePlan = tree.plan
    require(
        plan.n == tree.n,
        f"stale plan: caches {plan.n} points, tree has {tree.n}",
    )
    return plan


def reindex_uncovered_keys(keys: np.ndarray, k: int) -> np.ndarray:
    """Rewrite uncovered-point slots to the canonical global encoding.

    An uncovered (level, bucket) slot carries the negative key
    ``-(global index + 1)`` so factorization yields a singleton part.
    Global indices shift when points are inserted or deleted, so every
    merge re-canonicalizes — in place (callers pass freshly copied
    arrays) — making the cache agree bit-for-bit with what a fresh
    build would have produced for the same final indexing.
    """
    num_levels, n, width = keys.shape
    idx = np.broadcast_to(np.arange(n, dtype=np.int64), (num_levels, n))
    for col in range(0, width, k + 1):
        miss = keys[:, :, col] < 0
        if miss.any():
            keys[:, :, col + 1] = np.where(miss, -(idx + 1), keys[:, :, col + 1])
    return keys


def _project_new_points(plan: MaintenancePlan, raw: np.ndarray) -> np.ndarray:
    """Raw inserts -> the bucket-padded space the plan partitions in."""
    if plan.transform is not None:
        spec = plan.transform
        require(
            raw.shape[1] == int(spec["d"]),
            f"insert dimension {raw.shape[1]} != pinned transform input "
            f"dimension {spec['d']}",
        )
        from repro.jl.fjlt import FJLT

        transform = FJLT.cached(
            spec["d"],
            spec["n"],
            xi=spec["xi"],
            k=spec["k"],
            q=spec["q"],
            seed=spec["seed"],
        )
        projected = transform(raw)
    else:
        projected = raw
    require(
        projected.shape[1] == plan.dim,
        f"insert dimension {projected.shape[1]} != plan dimension {plan.dim}",
    )
    return pad_for_buckets(projected, plan.r)


def _touched_cells(changed_keys: np.ndarray) -> Tuple[int, int]:
    """(distinct cells over levels, levels with any touched cell)."""
    cells = 0
    levels = 0
    for lvl in range(changed_keys.shape[0]):
        if changed_keys.shape[1] == 0:
            continue
        distinct = np.unique(changed_keys[lvl], axis=0).shape[0]
        cells += int(distinct)
        levels += 1
    return cells, levels


def _assemble(
    plan: MaintenancePlan, points: np.ndarray, all_keys: np.ndarray
) -> Tuple[HSTree, int]:
    """Shared factorization tail: keys -> HSTree with a refreshed plan.

    Identical, stage for stage, to the fresh build's god assembly —
    this function *is* the bit-identity argument.  Also returns the
    total distinct-cell count over plan levels (the ``total_cells``
    denominator, measured on the same key-row footing as
    ``cells_touched``).
    """
    level_rows = level_rows_from_path_keys(all_keys)
    total_cells = int(sum(int(row.max()) + 1 for row in level_rows))
    chain, weights = refine_from_level_rows(
        level_rows, plan.scales, r=plan.r, weight_scale=plan.weight_scale
    )
    tree = build_hst(chain, weights, points=points, already_refined=True)
    return replace(tree, plan=replace(plan, path_keys=all_keys)), total_cells


def finish_insert(
    tree: HSTree,
    new_points: np.ndarray,
    new_keys: np.ndarray,
    uncovered: int,
) -> Tuple[HSTree, UpdateReport]:
    """Merge pre-computed path keys of inserted points into ``tree``.

    The god-side half of an insert, shared by the local
    :func:`apply_insert` and the in-model
    :func:`repro.serve.maintenance.mpc_dynamic_insert` (which computes
    ``new_keys`` inside a compute round) — one merge path, so both
    produce the same tree.  ``new_points`` are raw (pre-transform)
    coordinates; ``uncovered`` is the count of new points missed by
    every grid in some (level, bucket).
    """
    plan = _require_plan(tree)
    raw = check_points(new_points, min_points=1)
    if uncovered and plan.on_uncovered == "error":
        raise CoverageFailure(int(uncovered), plan.num_grids)
    require(
        new_keys.shape == (plan.num_levels, raw.shape[0], plan.key_width),
        "inserted path keys have the wrong shape",
    )

    merged = np.concatenate([plan.path_keys, new_keys], axis=1)
    reindex_uncovered_keys(merged, plan.k)
    if plan.transform is not None:
        # Pipeline trees live in the transformed space: append the
        # projected coordinates, matching tree.points' existing rows.
        appended = _project_new_points(plan, raw)[:, : plan.dim]
    else:
        appended = raw
    points = np.vstack([np.asarray(tree.points, dtype=np.float64), appended])

    new_tree, total_cells = _assemble(plan, points, merged)
    cells, levels = _touched_cells(new_keys)
    report = UpdateReport(
        kind="insert",
        points_changed=int(raw.shape[0]),
        paths_recomputed=int(raw.shape[0]),
        cells_touched=cells,
        total_cells=total_cells,
        levels_repartitioned=levels,
        num_levels=plan.num_levels,
        n_before=tree.n,
        n_after=new_tree.n,
    )
    return new_tree, report


def apply_insert(
    tree: HSTree, new_points: np.ndarray
) -> Tuple[HSTree, UpdateReport]:
    """Insert ``new_points``, re-partitioning only what they touch.

    Runs the hybrid-partition kernel for the inserted points alone
    (cached keys cover the resident points), then merges and
    re-factorizes.  See the module docstring for the bit-identity
    contract with a fresh build.
    """
    plan = _require_plan(tree)
    raw = check_points(new_points, min_points=1)
    padded = _project_new_points(plan, raw)
    new_keys, uncovered_mask = ballpart_path_keys(
        padded,
        plan.shifts,
        plan.scales,
        cell_factor=plan.cell_factor,
        offset=tree.n,
    )
    return finish_insert(tree, raw, new_keys, int(uncovered_mask.sum()))


def apply_delete(tree: HSTree, indices) -> Tuple[HSTree, UpdateReport]:
    """Delete points by index; surviving points keep their relative order.

    No geometric work at all: the deleted points' cached keys identify
    the touched cells, their key columns are dropped, and the remaining
    cache is re-factorized (with uncovered-slot indices
    re-canonicalized so the result matches a fresh build on the
    survivors).
    """
    plan = _require_plan(tree)
    idx = np.unique(np.asarray(indices, dtype=np.int64))
    require(idx.size > 0, "need at least one index to delete")
    require(
        bool((idx >= 0).all()) and bool((idx < tree.n).all()),
        f"delete indices out of range [0, {tree.n})",
    )
    remaining = tree.n - int(idx.size)
    require(
        remaining >= 2,
        f"cannot delete down to {remaining} point(s); trees need >= 2",
    )

    removed_keys = plan.path_keys[:, idx, :]
    keep = np.ones(tree.n, dtype=bool)
    keep[idx] = False
    kept = plan.path_keys[:, keep, :].copy()
    reindex_uncovered_keys(kept, plan.k)
    points = np.asarray(tree.points, dtype=np.float64)[keep]

    new_tree, total_cells = _assemble(plan, points, kept)
    cells, levels = _touched_cells(removed_keys)
    report = UpdateReport(
        kind="delete",
        points_changed=int(idx.size),
        paths_recomputed=0,
        cells_touched=cells,
        total_cells=total_cells,
        levels_repartitioned=levels,
        num_levels=plan.num_levels,
        n_before=tree.n,
        n_after=new_tree.n,
    )
    return new_tree, report
