"""Structural and metric invariants of HSTrees.

These checks back the property-based tests and double as debugging
tools: every embedding the library produces must pass
:func:`validate_hst` and (given the source points)
:func:`check_domination` — Theorem 2's first guarantee, which holds
*deterministically*, not just in expectation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.metrics import pairwise_distances_condensed
from repro.tree.hst import HSTree
from repro.tree.metric import pairwise_tree_distances


class TreeInvariantError(AssertionError):
    """An HSTree violated a structural or metric invariant."""


def check_refinement_chain(label_matrix: np.ndarray) -> None:
    """Each level must refine the previous (clusters only split, never merge).

    Equivalent statement: at every level, points sharing a label must
    have shared a label at the previous level.
    """
    labels = np.asarray(label_matrix)
    for lvl in range(1, labels.shape[0]):
        fine, coarse = labels[lvl], labels[lvl - 1]
        # For each fine cluster, all members must agree on their coarse
        # label: group-wise min == max.
        order = np.argsort(fine, kind="stable")
        f_sorted = fine[order]
        c_sorted = coarse[order]
        boundaries = np.flatnonzero(np.diff(f_sorted)) + 1
        for grp in np.split(c_sorted, boundaries):
            if grp.size and grp.min() != grp.max():
                raise TreeInvariantError(
                    f"level {lvl} merges clusters that level {lvl - 1} separated"
                )


def check_singleton_leaves(tree: HSTree) -> None:
    """The last level must isolate every distinct point.

    Exactly coincident points may (and should) share a leaf; when the
    tree carries its source coordinates we count distinct rows, otherwise
    we require index singletons.
    """
    last = tree.label_matrix[-1]
    if tree.points is not None:
        distinct = len(np.unique(np.asarray(tree.points), axis=0))
        if len(np.unique(last)) != distinct:
            raise TreeInvariantError(
                "final level does not isolate distinct coordinates"
            )
        # And no leaf may mix different coordinates.
        order = np.argsort(last, kind="stable")
        pts_sorted = np.asarray(tree.points)[order]
        boundaries = np.flatnonzero(np.diff(last[order])) + 1
        for grp in np.split(pts_sorted, boundaries):
            if grp.shape[0] > 1 and not (grp == grp[0]).all():
                raise TreeInvariantError("a leaf mixes distinct coordinates")
    elif len(np.unique(last)) != tree.n:
        raise TreeInvariantError("final level is not a singleton partition")


def check_metric_axioms(tree: HSTree, *, sample_pairs: int = 512,
                        seed: int = 0) -> None:
    """Spot-check symmetry and the (ultrametric-strength) triangle inequality.

    HST metrics are ultrametrics up to the factor-2 path structure:
    ``d(x,z) <= max(d(x,y), d(y,z))`` holds because the separation level
    of (x,z) is at least the min of the other two separation levels.
    """
    n = tree.n
    if n < 3:
        return
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n, size=(sample_pairs, 3))
    ij = pairwise_tree_distances(tree, pairs=(idx[:, 0], idx[:, 1]))
    jk = pairwise_tree_distances(tree, pairs=(idx[:, 1], idx[:, 2]))
    ik = pairwise_tree_distances(tree, pairs=(idx[:, 0], idx[:, 2]))
    degenerate = (idx[:, 0] == idx[:, 2])
    lhs = ik[~degenerate]
    rhs = np.maximum(ij, jk)[~degenerate]
    if not np.all(lhs <= rhs + 1e-9):
        raise TreeInvariantError("tree metric violates the ultrametric inequality")


def check_domination(
    tree: HSTree,
    points: np.ndarray,
    *,
    tolerance: float = 1e-9,
) -> float:
    """Theorem 2 part 1: ``dist_T(p, q) >= ||p - q||`` for all pairs.

    Returns the minimum ratio ``dist_T / ||p-q||`` over distinct pairs
    (>= 1 when domination holds).  Raises on violation.
    """
    euclid = pairwise_distances_condensed(points)
    treed = pairwise_tree_distances(tree)
    positive = euclid > 0
    if not positive.any():
        return float("inf")
    ratios = treed[positive] / euclid[positive]
    worst = float(ratios.min())
    if worst < 1.0 - tolerance:
        raise TreeInvariantError(
            f"domination violated: min dist_T/||p-q|| = {worst:.6f} < 1"
        )
    return worst


def validate_hst(tree: HSTree, points: Optional[np.ndarray] = None) -> None:
    """Run the full invariant suite (domination only when points given)."""
    check_refinement_chain(tree.label_matrix)
    check_singleton_leaves(tree)
    check_metric_axioms(tree)
    if points is not None:
        check_domination(tree, points)
