"""The HSTree container.

An HST over ``n`` points with ``L`` partitioning levels is stored as:

* ``label_matrix`` — ``(L+1, n)`` int64; row 0 is all zeros (the root
  cluster), row ``i`` gives each point's cluster id at level ``i``, and
  row ``L`` is a singleton labeling (every point its own leaf cluster);
* ``level_weights`` — ``(L,)`` float; ``level_weights[i-1]`` is the
  weight of every edge between a level-``i`` node and its level-``i-1``
  parent.

This "same weight per level" structure is exactly what the paper's
construction produces (edge weight ``∝ sqrt(r) * w`` at scale ``w``), and
it makes the tree metric a function of the *separation level* alone:

    dist_T(p, q) = 2 * sum(level_weights[s-1:])   where
    s = min{ i : label_matrix[i, p] != label_matrix[i, q] }

(and 0 when the points share even the leaf label, i.e. are duplicates
merged into one leaf).

Explicit node-level structure (parents, children, per-node members) is
materialized lazily for consumers that walk the tree (MST extraction,
EMD flows, networkx export).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.tree.dynamic import UpdateReport
    from repro.tree.queries import TreeQueryIndex


@dataclass(frozen=True)
class HSTree:
    """A hierarchically well-separated tree over ``n`` points.

    ``plan`` (when present) is the :class:`repro.tree.dynamic
    .MaintenancePlan` pinned by the build — the grids, scale schedule,
    and cached per-point path keys that :meth:`insert` / :meth:`delete`
    need to maintain the tree incrementally.  It is excluded from
    equality/repr and not persisted by :meth:`save`.
    """

    label_matrix: np.ndarray
    level_weights: np.ndarray
    points: Optional[np.ndarray] = None
    plan: Optional[Any] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        labels = np.asarray(self.label_matrix, dtype=np.int64)
        weights = np.asarray(self.level_weights, dtype=np.float64)
        require(labels.ndim == 2, "label_matrix must be (L+1, n)")
        require(weights.ndim == 1, "level_weights must be 1-D")
        require(
            labels.shape[0] == weights.shape[0] + 1,
            f"need exactly one weight per level: got {labels.shape[0]} label rows "
            f"and {weights.shape[0]} weights",
        )
        require(bool((weights > 0).all()), "level weights must be positive")
        require(bool((labels[0] == 0).all()), "level 0 must be the trivial root")
        object.__setattr__(self, "label_matrix", labels)
        object.__setattr__(self, "level_weights", weights)

    # -- basic shape ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of embedded points."""
        return int(self.label_matrix.shape[1])

    @property
    def num_levels(self) -> int:
        """Number of partitioning levels L (root row excluded)."""
        return int(self.label_matrix.shape[0] - 1)

    @cached_property
    def suffix_weights(self) -> np.ndarray:
        """``suffix_weights[i] = sum(level_weights[i:])`` with trailing 0.

        ``dist_T = 2 * suffix_weights[s-1]`` for separation level ``s``.
        """
        return np.concatenate(
            [np.cumsum(self.level_weights[::-1])[::-1], [0.0]]
        )

    def clusters_per_level(self) -> np.ndarray:
        """Number of distinct clusters at each level (root included)."""
        return np.array(
            [len(np.unique(row)) for row in self.label_matrix], dtype=np.int64
        )

    # -- incremental maintenance ------------------------------------------

    @cached_property
    def query_index(self) -> "TreeQueryIndex":
        """Per-level batched-query statistics (lazily built, cached).

        The broadcast-grouping structure behind
        :func:`repro.tree.queries.tree_nearest_batch` and friends; the
        serving layer caches one per tree version.
        """
        from repro.tree.queries import TreeQueryIndex

        return TreeQueryIndex(self)

    def insert(self, points: np.ndarray) -> "Tuple[HSTree, UpdateReport]":
        """Incrementally insert ``points``; returns ``(tree, report)``.

        Requires the build to have pinned a maintenance plan (the
        default god assembly of
        :func:`repro.core.mpc_embedding.mpc_tree_embedding` does).  The
        per-level hybrid partition is re-run for the inserted points
        only; cached path keys cover the rest, and the resulting tree is
        bit-identical to a fresh build on the final point set under the
        same pinned parameters (see docs/SERVING.md, "Bit-identity").
        """
        from repro.tree.dynamic import apply_insert

        return apply_insert(self, points)

    def delete(self, indices) -> "Tuple[HSTree, UpdateReport]":
        """Incrementally delete points by index; returns ``(tree, report)``.

        Same plan requirement and bit-identity contract as
        :meth:`insert`; remaining points keep their relative order, so
        index ``j`` of the new tree is the ``j``-th surviving point.
        """
        from repro.tree.dynamic import apply_delete

        return apply_delete(self, indices)

    # -- node materialization ---------------------------------------------

    @cached_property
    def nodes(self) -> "TreeNodes":
        """Explicit node arrays (lazily built, cached)."""
        return TreeNodes.from_label_matrix(self.label_matrix, self.level_weights)

    def to_networkx(self):
        """Export as a weighted ``networkx.Graph`` (nodes = tree nodes).

        Leaf nodes carry a ``point`` attribute with the point index.
        """
        import networkx as nx

        nodes = self.nodes
        g = nx.Graph()
        for node in range(nodes.count):
            g.add_node(node, level=int(nodes.level[node]))
        for node in range(1, nodes.count):
            g.add_edge(node, int(nodes.parent[node]), weight=float(nodes.weight[node]))
        for point, leaf in enumerate(nodes.leaf_of_point):
            g.nodes[int(leaf)]["point"] = point
        return g

    def total_edge_weight(self) -> float:
        """Sum of all edge weights (the tree's cost as a spanning object)."""
        nodes = self.nodes
        return float(nodes.weight[1:].sum())

    # -- persistence ------------------------------------------------------

    def save(self, path) -> None:
        """Serialize to ``.npz`` (label matrix, weights, optional points)."""
        arrays = {
            "label_matrix": self.label_matrix,
            "level_weights": self.level_weights,
        }
        if self.points is not None:
            arrays["points"] = np.asarray(self.points)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path) -> "HSTree":
        """Load a tree written by :meth:`save`."""
        data = np.load(path)
        points = data["points"] if "points" in data.files else None
        return cls(data["label_matrix"], data["level_weights"], points=points)


@dataclass(frozen=True)
class TreeNodes:
    """Flattened node arrays for one HSTree.

    Node 0 is the root.  Nodes are numbered level by level; ``parent[v]``
    is the node id of v's parent (root's parent is -1), ``weight[v]`` the
    weight of the edge to the parent (0 for the root), ``level[v]`` the
    partition level the node lives at, and ``leaf_of_point[p]`` the node
    id of point p's leaf.
    """

    parent: np.ndarray
    weight: np.ndarray
    level: np.ndarray
    leaf_of_point: np.ndarray
    members: List[np.ndarray] = field(repr=False)

    @property
    def count(self) -> int:
        return int(self.parent.shape[0])

    def children(self) -> Dict[int, List[int]]:
        """Adjacency map parent -> children (computed on demand)."""
        out: Dict[int, List[int]] = {}
        for v in range(1, self.count):
            out.setdefault(int(self.parent[v]), []).append(v)
        return out

    @classmethod
    def from_label_matrix(
        cls, label_matrix: np.ndarray, level_weights: np.ndarray
    ) -> "TreeNodes":
        """Materialize every level's nodes with one lexicographic sort.

        Columns are sorted once by their full label path (row 1 primary);
        a level-``l`` node is then a maximal run over which no row
        ``<= l`` changes, so each level reduces to a boolean OR + cumsum
        over the shared sorted order — no per-node Python loop and no
        per-level re-sorting of keys.  Node numbering (level-major, then
        path-lexicographic) matches the historical per-level
        ``np.unique`` construction bit for bit
        (:meth:`from_label_matrix_perlevel`) and the per-node recursive
        reference (:meth:`from_label_matrix_scalar`).
        """
        labels = np.ascontiguousarray(np.asarray(label_matrix, dtype=np.int64))
        num_rows, n = labels.shape
        if n == 0 or num_rows == 1:
            return cls(
                parent=np.array([-1], dtype=np.int64),
                weight=np.array([0.0]),
                level=np.array([0], dtype=np.int64),
                leaf_of_point=np.zeros(n, dtype=np.int64),
                members=[np.arange(n)],
            )

        order = np.lexsort(labels[::-1])  # primary key = row 0 (all zeros)
        sorted_rows = labels[:, order]

        parent_chunks: List[np.ndarray] = [np.array([-1], dtype=np.int64)]
        weight_chunks: List[np.ndarray] = [np.array([0.0])]
        level_chunks: List[np.ndarray] = [np.array([0], dtype=np.int64)]
        members: List[np.ndarray] = [np.arange(n)]

        changed = np.zeros(n - 1, dtype=bool) if n > 1 else np.empty(0, dtype=bool)
        ranks = np.empty(n, dtype=np.int64)
        # node id at the previous level, in sorted column positions.
        prev_ids_sorted = np.zeros(n, dtype=np.int64)
        base = 1
        for lvl in range(1, num_rows):
            row = sorted_rows[lvl]
            if n > 1:
                changed |= row[1:] != row[:-1]
            ranks[0] = 0
            np.cumsum(changed, out=ranks[1:])
            count = int(ranks[-1]) + 1
            ids_sorted = base + ranks

            # One entry per node: runs are contiguous in sorted order, so
            # each node's first position carries its parent.
            starts = (
                np.concatenate([[0], np.flatnonzero(changed) + 1])
                if n > 1
                else np.array([0], dtype=np.int64)
            )
            parent_chunks.append(prev_ids_sorted[starts])
            weight_chunks.append(np.full(count, float(level_weights[lvl - 1])))
            level_chunks.append(np.full(count, lvl, dtype=np.int64))

            # Members in ascending point order: re-rank the sorted
            # columns by (run id, original index) — packed into one
            # unique int64 key so a single argsort replaces a two-key
            # lexsort — and slice at run boundaries (direct slicing;
            # np.split's per-call overhead dominates at tens of
            # thousands of nodes).
            within = np.argsort(ranks * np.int64(n) + order)
            ordered_points = order[within]
            bounds = starts.tolist() + [n]
            members.extend(
                ordered_points[a:b] for a, b in zip(bounds[:-1], bounds[1:])
            )

            prev_ids_sorted = ids_sorted
            base += count

        leaf_of_point = np.empty(n, dtype=np.int64)
        leaf_of_point[order] = prev_ids_sorted
        return cls(
            parent=np.concatenate(parent_chunks),
            weight=np.concatenate(weight_chunks),
            level=np.concatenate(level_chunks),
            leaf_of_point=leaf_of_point,
            members=members,
        )

    @classmethod
    def from_label_matrix_perlevel(
        cls, label_matrix: np.ndarray, level_weights: np.ndarray
    ) -> "TreeNodes":
        """Reference per-level construction (the pre-batch path).

        Factorizes each level against its parent ids with ``np.unique``
        and appends nodes in a Python loop; kept as the bit-equivalence
        oracle for :meth:`from_label_matrix`.
        """
        num_rows, n = label_matrix.shape
        parents: List[int] = [-1]
        weights: List[float] = [0.0]
        levels: List[int] = [0]
        members: List[np.ndarray] = [np.arange(n)]

        # node id of each cluster at the previous level, per point.
        prev_node_of_point = np.zeros(n, dtype=np.int64)

        for lvl in range(1, num_rows):
            row = label_matrix[lvl]
            # A node is a (parent cluster, this-level label) pair: two
            # points with equal level labels but different parents must
            # become different nodes (labels are only unique per draw).
            packed = prev_node_of_point * np.int64(row.max() + 1) + row
            uniques, node_idx = np.unique(packed, return_inverse=True)
            base = len(parents)
            node_of_point = base + node_idx
            order = np.argsort(node_idx, kind="stable")
            boundaries = np.flatnonzero(np.diff(node_idx[order])) + 1
            groups = np.split(order, boundaries)
            for g in groups:
                parents.append(int(prev_node_of_point[g[0]]))
                weights.append(float(level_weights[lvl - 1]))
                levels.append(lvl)
                members.append(g)
            prev_node_of_point = node_of_point

        return cls(
            parent=np.asarray(parents, dtype=np.int64),
            weight=np.asarray(weights, dtype=np.float64),
            level=np.asarray(levels, dtype=np.int64),
            leaf_of_point=prev_node_of_point.copy(),
            members=members,
        )

    @classmethod
    def from_label_matrix_scalar(
        cls, label_matrix: np.ndarray, level_weights: np.ndarray
    ) -> "TreeNodes":
        """Reference per-node recursive construction (pure Python).

        Each node partitions its own members by the next level's label,
        one point at a time — the "per-node recursion" the single-sort
        batch path (:meth:`from_label_matrix`) replaces, and the scalar
        arm the benchmark harness times against it.  Children are
        emitted parent-by-parent in node-id order and label-sorted
        within a parent, which is exactly the level-major
        path-lexicographic numbering of the other constructors, so
        output is bit-identical.
        """
        labels = np.asarray(label_matrix, dtype=np.int64)
        num_rows, n = labels.shape
        parents: List[int] = [-1]
        weights: List[float] = [0.0]
        levels: List[int] = [0]
        members: List[np.ndarray] = [np.arange(n)]

        frontier: List[Tuple[int, List[int]]] = [(0, list(range(n)))]
        for lvl in range(1, num_rows):
            row = labels[lvl]
            next_frontier: List[Tuple[int, List[int]]] = []
            for node_id, node_members in frontier:
                by_label: Dict[int, List[int]] = {}
                for p in node_members:
                    by_label.setdefault(int(row[p]), []).append(p)
                for lab in sorted(by_label):
                    child_members = by_label[lab]
                    child_id = len(parents)
                    parents.append(node_id)
                    weights.append(float(level_weights[lvl - 1]))
                    levels.append(lvl)
                    members.append(np.asarray(child_members, dtype=np.int64))
                    next_frontier.append((child_id, child_members))
            frontier = next_frontier

        leaf_of_point = np.empty(n, dtype=np.int64)
        for node_id, node_members in frontier:
            for p in node_members:
                leaf_of_point[p] = node_id
        return cls(
            parent=np.asarray(parents, dtype=np.int64),
            weight=np.asarray(weights, dtype=np.float64),
            level=np.asarray(levels, dtype=np.int64),
            leaf_of_point=leaf_of_point,
            members=members,
        )
