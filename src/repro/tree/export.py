"""Interoperability exports for HSTrees.

* :func:`to_newick` — the Newick format used by phylogenetics and
  hierarchy tooling (branch lengths = edge weights, leaf names = point
  indices or user labels);
* :func:`to_linkage` — a SciPy ``linkage``-style matrix so scipy's
  dendrogram / cluster-cutting utilities work on the embedding;
* :func:`from_linkage` — build an HSTree-compatible label matrix from a
  SciPy linkage (for comparing agglomerative hierarchies against ours).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.tree.hst import HSTree
from repro.util.validation import require


def to_newick(tree: HSTree, *, labels: Optional[Sequence[str]] = None) -> str:
    """Serialize the HST as a Newick string with branch lengths.

    Leaves are named ``p<i>`` (or ``labels[i]``).  Multi-member leaves
    (duplicate points sharing a leaf node) expand to zero-length
    branches so every point appears exactly once.
    """
    if labels is not None:
        require(len(labels) == tree.n, "need one label per point")
        names = list(labels)
    else:
        names = [f"p{i}" for i in range(tree.n)]

    nodes = tree.nodes
    children = nodes.children()

    def render(v: int) -> str:
        kids = children.get(v, [])
        if not kids:
            members = nodes.members[v]
            if members.size == 1:
                return names[int(members[0])]
            inner = ",".join(f"{names[int(p)]}:0" for p in members)
            return f"({inner})"
        inner = ",".join(
            f"{render(c)}:{nodes.weight[c]:g}" for c in kids
        )
        return f"({inner})"

    return render(0) + ";"


def to_linkage(tree: HSTree) -> np.ndarray:
    """SciPy-style linkage matrix of the HST's merge structure.

    Row ``[a, b, dist, size]`` merges clusters a and b at height
    ``dist`` (the tree distance between their members).  Internal nodes
    with more than two children become chains of binary merges at the
    same height, which is how SciPy represents ties.
    """
    nodes = tree.nodes
    children = nodes.children()
    n = tree.n

    # Map leaves to scipy ids 0..n-1 (multi-member leaves: merge the
    # members at height 0 first).
    rows: List[List[float]] = []
    next_id = n
    scipy_id = {}

    def merge(a: int, b: int, height: float, size: int) -> int:
        nonlocal next_id
        rows.append([float(a), float(b), float(height), float(size)])
        out = next_id
        next_id += 1
        return out

    order = np.argsort(-nodes.level, kind="stable")
    for v in order:
        v = int(v)
        kids = children.get(v, [])
        if not kids:
            members = nodes.members[v]
            current = int(members[0])
            size = 1
            for p in members[1:]:
                current = merge(current, int(p), 0.0, size + 1)
                size += 1
            scipy_id[v] = current
        else:
            height = 2.0 * float(
                tree.suffix_weights[int(nodes.level[v])]
            )
            current = scipy_id[kids[0]]
            size = int(nodes.members[kids[0]].size)
            for c in kids[1:]:
                size += int(nodes.members[c].size)
                current = merge(current, scipy_id[c], height, size)
            scipy_id[v] = current

    return np.asarray(rows, dtype=np.float64).reshape(-1, 4)


def from_linkage(linkage: np.ndarray, n: int) -> np.ndarray:
    """Label matrix (levels x n) of a SciPy linkage's merge sequence.

    Level 0 is the trivial root; each subsequent level undoes one merge
    (coarse to fine).  Lets agglomerative baselines be compared with
    HSTree tooling.  Heights are not preserved — callers supply weights.
    """
    linkage = np.asarray(linkage, dtype=np.float64)
    require(linkage.shape[1] == 4, "linkage must be (m, 4)")
    member_lists = {i: [i] for i in range(n)}
    next_id = n
    snapshots = []
    for a, b, _h, _s in linkage:
        member_lists[next_id] = member_lists.pop(int(a)) + member_lists.pop(int(b))
        next_id += 1
        snapshot = np.empty(n, dtype=np.int64)
        for label, (cid, members) in enumerate(sorted(member_lists.items())):
            snapshot[members] = label
        snapshots.append(snapshot)
    # snapshots go fine -> coarse as merges proceed; we want root first.
    rows = [np.zeros(n, dtype=np.int64)] + snapshots[::-1] + [
        np.arange(n, dtype=np.int64)
    ]
    # Deduplicate consecutive identical rows (the last merge == root).
    dedup = [rows[0]]
    for row in rows[1:]:
        if not np.array_equal(row, dedup[-1]):
            dedup.append(row)
    return np.vstack(dedup)
