"""Constructing HSTrees from hierarchies of flat partitions."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.partition.base import FlatPartition, canonicalize_labels, refine
from repro.tree.hst import HSTree
from repro.util.validation import require


def geometric_weights(
    top_weight: float, num_levels: int, *, ratio: float = 0.5
) -> np.ndarray:
    """Level weights ``top_weight * ratio^(i)`` for i = 0..L-1.

    The paper's schedule: scale (and hence edge weight ``∝ sqrt(r) w``)
    halves per level.
    """
    require(top_weight > 0, "top_weight must be positive")
    require(0 < ratio < 1, "ratio must lie in (0, 1)")
    return top_weight * ratio ** np.arange(num_levels, dtype=np.float64)


def refinement_chain_batch(label_rows: np.ndarray) -> List[np.ndarray]:
    """All cumulative refinements of stacked per-level labels at once.

    ``label_rows`` is ``(L, n)`` int64 — one independent partition draw
    per row, coarse to fine.  Returns ``L`` dense label arrays where
    entry ``i`` is the common refinement of rows ``0..i`` (points share a
    part iff they agree on every row so far).

    One lexicographic sort of the columns replaces the per-level
    ``refine``/``np.unique`` cascade: after sorting, level ``i``'s parts
    are the maximal runs over which no row ``<= i`` changes, so each
    level costs a single boolean OR + cumsum pass.  Label numbering is
    identical to the iterative :func:`repro.partition.base.refine` chain
    (both rank lexicographically).
    """
    rows = np.ascontiguousarray(np.atleast_2d(np.asarray(label_rows, dtype=np.int64)))
    num_levels, n = rows.shape
    require(num_levels >= 1, "need at least one partition level")
    if n == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(num_levels)]

    order = np.lexsort(rows[::-1])  # primary key = row 0
    sorted_rows = rows[:, order]
    changed = np.zeros(n - 1, dtype=bool) if n > 1 else np.empty(0, dtype=bool)
    ranks = np.empty(n, dtype=np.int64)
    out: List[np.ndarray] = []
    for row in sorted_rows:
        if n > 1:
            changed |= row[1:] != row[:-1]
        ranks[0] = 0
        np.cumsum(changed, out=ranks[1:])
        labels = np.empty(n, dtype=np.int64)
        labels[order] = ranks
        out.append(labels)
    return out


def cumulative_refinements(partitions: Sequence[FlatPartition]) -> List[FlatPartition]:
    """Turn independent per-level draws into a refinement chain.

    Level ``i``'s clusters become the intersection of draws ``1..i`` —
    exactly the recursive "partition each part" semantics of Algorithm 1,
    expressed with globally drawn partitions (as Algorithm 2 does).
    Computed level-wise in one pass via :func:`refinement_chain_batch`.
    """
    if not partitions:
        raise ValueError("need at least one partition level")
    stacked = np.vstack([p.labels for p in partitions])
    chain_labels = refinement_chain_batch(stacked)
    return [
        FlatPartition(labels, scale=part.scale)
        for labels, part in zip(chain_labels, partitions)
    ]


def cumulative_refinements_perlevel(
    partitions: Sequence[FlatPartition],
) -> List[FlatPartition]:
    """Reference level-by-level refinement chain (the pre-batch path).

    One :func:`repro.partition.base.refine` (pack + sort) per level —
    still vectorized within a level; the bit-equivalence oracle for
    :func:`cumulative_refinements`.  Output is identical.
    """
    if not partitions:
        raise ValueError("need at least one partition level")
    chain: List[FlatPartition] = []
    current = FlatPartition.trivial(partitions[0].n)
    for part in partitions:
        current = refine(current, part, scale=part.scale)
        chain.append(current)
    return chain


def cumulative_refinements_scalar(
    partitions: Sequence[FlatPartition],
) -> List[FlatPartition]:
    """Reference per-point refinement chain (pure Python loops).

    The genuinely scalar path the benchmark harness's scalar arm runs:
    for each level, every point's ``(previous part, new label)`` pair is
    formed one point at a time and pairs are ranked by sorting the
    distinct keys — exactly :func:`repro.partition.base.refine`'s
    lexicographic numbering, so output is identical to
    :func:`cumulative_refinements`.
    """
    if not partitions:
        raise ValueError("need at least one partition level")
    n = partitions[0].n
    chain: List[FlatPartition] = []
    prev = [0] * n
    for part in partitions:
        row = part.labels
        pairs = [(prev[i], int(row[i])) for i in range(n)]
        rank = {key: lab for lab, key in enumerate(sorted(set(pairs)))}
        prev = [rank[p] for p in pairs]
        chain.append(
            FlatPartition(np.asarray(prev, dtype=np.int64), scale=part.scale)
        )
    return chain


def level_rows_from_path_keys(all_keys: np.ndarray) -> List[np.ndarray]:
    """Factorize per-level path keys into dense per-level label rows.

    ``all_keys`` is ``(L, n, width)`` int64 (one path-key row per point
    per level, e.g. from
    :func:`repro.partition.hybrid.ballpart_path_keys`); two points share
    a level-``l`` cluster iff their key rows at level ``l`` are equal.
    One ``np.unique`` per level — the god-view assembly of Algorithm 2's
    "T is implicitly the union of the returned T_i s", shared by the
    fresh MPC build and the incremental maintenance path so both
    factorize identically.
    """
    keys = np.asarray(all_keys, dtype=np.int64)
    require(keys.ndim == 3, "path keys must be (L, n, width)")
    rows: List[np.ndarray] = []
    for lvl in range(keys.shape[0]):
        _, labels = np.unique(keys[lvl], axis=0, return_inverse=True)
        rows.append(labels.astype(np.int64))
    return rows


def refine_from_level_rows(
    level_rows: Sequence[np.ndarray],
    scales: Sequence[float],
    *,
    r: int,
    weight_scale: float = 1.0,
) -> tuple:
    """Canonicalize + refine per-level label rows into an HST chain.

    The shared assembly tail of Algorithm 2: each level's labels are
    canonicalized, refined against the chain so far, and weighted
    ``2 sqrt(r) * weight_scale * scale``; the chain stops early once
    every cluster is a singleton.  Returns ``(chain, weights)`` ready
    for :func:`build_hst` with ``already_refined=True``.
    """
    require(len(level_rows) <= len(scales), "need one scale per level row")
    chain: List[FlatPartition] = []
    weights: List[float] = []
    current = FlatPartition.trivial(int(np.asarray(level_rows[0]).shape[0]))
    weight_factor = 2.0 * math.sqrt(r) * weight_scale
    for lvl, row in enumerate(level_rows):
        flat = FlatPartition(canonicalize_labels(row), scale=float(scales[lvl]))
        current = refine(current, flat, scale=float(scales[lvl]))
        chain.append(current)
        weights.append(weight_factor * float(scales[lvl]))
        if current.is_singletons():
            break
    return chain, weights


def build_hst(
    level_partitions: Sequence[FlatPartition],
    level_weights: Sequence[float],
    *,
    points: Optional[np.ndarray] = None,
    already_refined: bool = False,
    force_singleton_leaves: bool = True,
) -> HSTree:
    """Assemble an HSTree from per-level partitions.

    Parameters
    ----------
    level_partitions:
        One flat partition per level, coarse to fine.  Unless
        ``already_refined`` they are treated as independent draws and
        composed with :func:`cumulative_refinements`.
    level_weights:
        One positive edge weight per level (weight of edges from level-i
        nodes up to their parents).
    points:
        Optional original coordinates, stored for downstream consumers.
    force_singleton_leaves:
        Append a singleton level (with weight continuing the geometric
        schedule) if the final level still has multi-point clusters —
        guaranteeing every point is a leaf, as the embedding requires.
    """
    parts = list(level_partitions)
    weights = [float(w) for w in level_weights]
    require(len(parts) == len(weights), "need exactly one weight per level")
    require(len(parts) >= 1, "need at least one level")

    chain = parts if already_refined else cumulative_refinements(parts)
    n = chain[0].n

    if force_singleton_leaves and not chain[-1].is_singletons():
        tail_weight = weights[-1] / 2.0 if weights else 1.0
        if points is not None:
            # Group exactly coincident points into one leaf: duplicates
            # are at Euclidean distance 0 and must stay at tree distance
            # 0.  Coordinate grouping refines the chain (identical points
            # always received identical partition labels), enforced by
            # the explicit refine below.
            _, coord_labels = np.unique(np.asarray(points), axis=0, return_inverse=True)
            leaf = refine(chain[-1], FlatPartition(coord_labels.astype(np.int64)))
        else:
            leaf = FlatPartition.singletons(n, scale=0.0)
        if leaf.labels.shape[0] and not np.array_equal(leaf.labels, chain[-1].labels):
            chain = chain + [leaf]
            weights = weights + [tail_weight]

    label_matrix = np.vstack(
        [np.zeros(n, dtype=np.int64)] + [p.labels for p in chain]
    )
    return HSTree(label_matrix, np.asarray(weights), points=points)


def level_schedule(
    diameter: float, *, min_separation: float = 1.0, r: int = 1,
    extra_levels: int = 2
) -> tuple:
    """Scale schedule ``w_1 > w_2 > ...`` for a hierarchy.

    Starts at ``w_1 = 2^ceil(log2(diameter)) / 2`` (so the whole point
    set fits within one top-scale part: ``2 sqrt(r) w_1 >= diameter``)
    and halves until parts are guaranteed smaller than the minimum
    pairwise separation (``2 sqrt(r) w < min_separation``), plus
    ``extra_levels`` of slack.  Returns ``(scales, num_levels)``.

    For integer lattice inputs ``min_separation = 1`` (the paper's
    setting), giving ``L = O(log Δ + log r)`` levels.
    """
    require(diameter > 0, "diameter must be positive")
    require(min_separation > 0, "min_separation must be positive")
    w1 = 2.0 ** math.ceil(math.log2(diameter)) / 2.0
    w1 = max(w1, min_separation / 2.0)
    scales = [w1]
    while 2.0 * scales[-1] * math.sqrt(r) >= min_separation and len(scales) < 128:
        scales.append(scales[-1] / 2.0)
    for _ in range(extra_levels):
        scales.append(scales[-1] / 2.0)
    return np.asarray(scales, dtype=np.float64), len(scales)
