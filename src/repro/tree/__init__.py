"""Hierarchically well-separated trees (HSTs) and their tree metric.

A hierarchy of flat partitions (root → singletons, each level refining
the previous) is stored compactly as a label matrix plus per-level edge
weights (:class:`~repro.tree.hst.HSTree`).  Because every edge between
levels ``i-1`` and ``i`` carries the same weight, the tree distance
between two points depends only on the first level separating them —
:mod:`~repro.tree.metric` exploits this for fully vectorized pairwise
distance computation.  :mod:`~repro.tree.build` turns partition lists
into trees, and :mod:`~repro.tree.validate` checks structural invariants
(refinement, weights, domination).
"""

from repro.tree.build import (
    build_hst,
    cumulative_refinements,
    geometric_weights,
    refinement_chain_batch,
)
from repro.tree.export import from_linkage, to_linkage, to_newick
from repro.tree.hst import HSTree
from repro.tree.metric import (
    cophenetic_correlation,
    pairwise_tree_distances,
    separation_levels,
    tree_distance,
    tree_distances_from_point,
)
from repro.tree.queries import closest_pair, range_query, tree_nearest
from repro.tree.stats import HierarchyStats, hierarchy_stats
from repro.tree.validate import (
    check_domination,
    check_refinement_chain,
    validate_hst,
)

__all__ = [
    "HSTree",
    "build_hst",
    "cumulative_refinements",
    "refinement_chain_batch",
    "geometric_weights",
    "tree_distance",
    "pairwise_tree_distances",
    "tree_distances_from_point",
    "separation_levels",
    "cophenetic_correlation",
    "tree_nearest",
    "range_query",
    "closest_pair",
    "hierarchy_stats",
    "HierarchyStats",
    "to_newick",
    "to_linkage",
    "from_linkage",
    "validate_hst",
    "check_refinement_chain",
    "check_domination",
]
