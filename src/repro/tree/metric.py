"""Tree-metric computations on HSTrees.

Everything here exploits the level structure: the distance between two
points is determined by the first level whose clusters separate them, so
pairwise distances over ``m`` pairs cost ``O(L * m)`` vectorized numpy
operations and no tree walking.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tree.hst import HSTree
from repro.util.validation import require


def separation_levels(
    tree: HSTree, pairs_i: np.ndarray, pairs_j: np.ndarray
) -> np.ndarray:
    """First level (1-based) at which each pair's clusters differ.

    Returns ``L + 1`` for pairs that are never separated (duplicate
    points sharing a leaf).
    """
    pairs_i = np.asarray(pairs_i, dtype=np.int64)
    pairs_j = np.asarray(pairs_j, dtype=np.int64)
    labels = tree.label_matrix
    num_levels = tree.num_levels
    sep = np.full(pairs_i.shape, num_levels + 1, dtype=np.int64)
    undecided = np.ones(pairs_i.shape, dtype=bool)
    for lvl in range(1, num_levels + 1):
        if not undecided.any():
            break
        row = labels[lvl]
        differs = undecided & (row[pairs_i] != row[pairs_j])
        sep[differs] = lvl
        undecided &= ~differs
    return sep


def distances_for_separation(tree: HSTree, sep: np.ndarray) -> np.ndarray:
    """Map separation levels to tree distances: ``2 * suffix_weights``."""
    suffix = tree.suffix_weights
    sep = np.asarray(sep, dtype=np.int64)
    # sep == L+1 -> suffix index L -> 0 (shared leaf / duplicates).
    return 2.0 * suffix[np.clip(sep - 1, 0, suffix.shape[0] - 1)]


def tree_distance(tree: HSTree, i: int, j: int) -> float:
    """Tree-metric distance between points ``i`` and ``j``."""
    if i == j:
        return 0.0
    sep = separation_levels(tree, np.array([i]), np.array([j]))
    return float(distances_for_separation(tree, sep)[0])


def pairwise_tree_distances(
    tree: HSTree, *, pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
) -> np.ndarray:
    """Tree distances for all (or the given) point pairs.

    Without ``pairs``, returns the condensed upper-triangle vector in
    scipy ``pdist`` order — directly comparable with
    :func:`repro.geometry.metrics.pairwise_distances_condensed`.
    """
    if pairs is None:
        n = tree.n
        iu, ju = np.triu_indices(n, k=1)
    else:
        iu, ju = pairs
    sep = separation_levels(tree, iu, ju)
    return distances_for_separation(tree, sep)


def tree_distances_from_point(tree: HSTree, i: int) -> np.ndarray:
    """Distances from point ``i`` to every point (vector of length n)."""
    n = tree.n
    others = np.arange(n)
    sep = separation_levels(tree, np.full(n, i, dtype=np.int64), others)
    dists = distances_for_separation(tree, sep)
    dists[i] = 0.0
    return dists


def cophenetic_correlation(tree: HSTree, points: np.ndarray) -> float:
    """Pearson correlation between tree and Euclidean pairwise distances.

    The standard scalar score for how faithfully a hierarchy represents
    a metric (1.0 = perfect monotone agreement in the linear sense).
    Distortion bounds the worst pair; this summarizes the bulk.
    """
    from repro.geometry.metrics import pairwise_distances_condensed

    pts = np.asarray(points, dtype=np.float64)
    require(pts.shape[0] == tree.n, "points/tree size mismatch")
    require(tree.n >= 3, "need at least 3 points for a correlation")
    euclid = pairwise_distances_condensed(pts)
    treed = pairwise_tree_distances(tree)
    if euclid.std() == 0 or treed.std() == 0:
        return 0.0
    return float(np.corrcoef(euclid, treed)[0, 1])


def subtree_counts_at_level(tree: HSTree, level: int) -> np.ndarray:
    """Cluster sizes at a level, aligned with that level's labels.

    ``counts[c]`` is the number of points whose level-``level`` cluster
    label is ``c`` — the densest-ball primitive (Corollary 1(1)).
    """
    require(0 <= level <= tree.num_levels, f"level out of range: {level}")
    row = tree.label_matrix[level]
    return np.bincount(row, minlength=int(row.max()) + 1)
