"""Structural diagnostics of tree embeddings.

``hierarchy_stats`` summarizes what an embedding's hierarchy looks like
— cluster counts, sizes, branching, and effective depth per level —
the numbers one inspects when a distortion result is surprising (e.g.
"did the top level shatter the data immediately?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.tree.hst import HSTree


@dataclass(frozen=True)
class LevelStats:
    """Per-level summary of one hierarchy level."""

    level: int
    scale_weight: float
    clusters: int
    largest: int
    mean_size: float
    singletons: int
    split_from_parent: int  # how many parent clusters were split here


@dataclass(frozen=True)
class HierarchyStats:
    """Whole-hierarchy summary."""

    levels: List[LevelStats]
    num_points: int
    depth: int
    first_singleton_level: int
    mean_branching: float

    def as_rows(self) -> List[Dict]:
        """Table-friendly rows (benchmarks / debugging output)."""
        return [
            {
                "level": s.level,
                "weight": s.scale_weight,
                "clusters": s.clusters,
                "largest": s.largest,
                "mean_size": s.mean_size,
                "singletons": s.singletons,
                "splits": s.split_from_parent,
            }
            for s in self.levels
        ]


def hierarchy_stats(tree: HSTree) -> HierarchyStats:
    """Compute per-level structure statistics for an HSTree."""
    n = tree.n
    levels: List[LevelStats] = []
    first_singleton = tree.num_levels
    prev_counts = 1
    total_branch, branch_events = 0, 0

    for lvl in range(1, tree.num_levels + 1):
        row = tree.label_matrix[lvl]
        sizes = np.bincount(row)
        sizes = sizes[sizes > 0]
        clusters = int(sizes.shape[0])
        singletons = int((sizes == 1).sum())
        split = clusters - prev_counts
        if clusters > prev_counts:
            total_branch += clusters
            branch_events += prev_counts
        if clusters == n and first_singleton == tree.num_levels:
            first_singleton = lvl
        levels.append(
            LevelStats(
                level=lvl,
                scale_weight=float(tree.level_weights[lvl - 1]),
                clusters=clusters,
                largest=int(sizes.max()),
                mean_size=float(sizes.mean()),
                singletons=singletons,
                split_from_parent=max(0, split),
            )
        )
        prev_counts = clusters

    mean_branching = (total_branch / branch_events) if branch_events else 1.0
    return HierarchyStats(
        levels=levels,
        num_points=n,
        depth=tree.num_levels,
        first_singleton_level=first_singleton,
        mean_branching=float(mean_branching),
    )
