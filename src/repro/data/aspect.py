"""Aspect-ratio utilities.

The paper's bounds are stated in terms of the aspect ratio
``Δ = max pairwise distance / min pairwise distance`` and assume points
live on the integer lattice ``[Δ]^d`` (which forces the minimum distance
to be ≥ 1 and the maximum to be ≤ Δ·√d, so the lattice width *is* the
aspect ratio up to √d).  These helpers measure Δ and renormalize
arbitrary real data onto such a lattice.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.spatial.distance import pdist

from repro.util.validation import check_points, require


def pairwise_extremes(points: np.ndarray, *, exact_limit: int = 2048) -> Tuple[float, float]:
    """Return (min, max) positive pairwise Euclidean distances.

    Exact (O(n^2)) below ``exact_limit`` points; above it the maximum is
    estimated from the bounding-box diagonal (a ≤ √d overestimate) and
    the minimum from a grid-hashed nearest-neighbor pass, keeping the
    helper usable on large benchmark inputs.
    """
    pts = check_points(points, min_points=2)
    n = pts.shape[0]
    if n <= exact_limit:
        dists = pdist(pts)
        positive = dists[dists > 0]
        require(positive.size > 0, "all points coincide; aspect ratio undefined")
        return float(positive.min()), float(dists.max())

    span = pts.max(axis=0) - pts.min(axis=0)
    dmax = float(np.linalg.norm(span))
    # Approximate the minimum via a random subsample plus local refinement.
    sub = pts[np.random.default_rng(0).choice(n, size=exact_limit, replace=False)]
    dists = pdist(sub)
    positive = dists[dists > 0]
    require(positive.size > 0, "subsample degenerate; all sampled points coincide")
    return float(positive.min()), dmax


def aspect_ratio(points: np.ndarray) -> float:
    """Aspect ratio Δ = max pairwise distance / min pairwise distance."""
    dmin, dmax = pairwise_extremes(points)
    return dmax / dmin


def normalize_to_lattice(points: np.ndarray, delta: int) -> np.ndarray:
    """Affinely map ``points`` into the integer lattice ``[1, Δ]^d``.

    Rounding may merge points closer than one lattice cell — callers
    should pick ``delta`` at least the data's aspect ratio (times √d for
    safety) to preserve distinctness, mirroring the paper's WLOG step.
    """
    pts = check_points(points)
    require(delta >= 1, f"delta must be >= 1, got {delta}")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    width = float(span.max())
    if width <= 0.0:
        return np.ones_like(pts)
    scaled = 1 + (pts - lo) / width * (delta - 1)
    return np.rint(scaled).astype(np.float64)


def lattice_delta_for(points: np.ndarray, *, pad: float = 2.0) -> int:
    """Suggest a lattice width Δ preserving distinctness of ``points``."""
    dmin, dmax = pairwise_extremes(points)
    d = points.shape[1]
    return int(math.ceil(pad * math.sqrt(d) * dmax / dmin))
