"""Generators mimicking learned-representation workloads.

The paper motivates tree embeddings with "massive high-dimensional
data"; in practice that usually means learned vector representations,
whose hallmark is low intrinsic dimension inside a high ambient
dimension with heavy-tailed cluster sizes.  These generators produce
that structure synthetically:

* :func:`low_rank_cloud` — points on a random r-dimensional subspace
  plus small ambient noise (the classic spectral decay shape);
* :func:`topic_model_cloud` — convex mixtures of a few "topic"
  directions with Zipfian topic popularity — heavy-tailed cluster
  sizes, the regime where densest-ball/k-median structure is
  interesting.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.rng import SeedLike, as_generator, spawn_many
from repro.util.validation import check_positive, require


def low_rank_cloud(
    n: int,
    d: int,
    delta: int,
    *,
    intrinsic_dim: int = 4,
    noise: float = 0.005,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points near a random ``intrinsic_dim``-dimensional subspace.

    Coordinates land on the integer lattice ``[1, Δ]^d``.  After JL (or
    directly), the pairwise structure is governed by the low-dimensional
    factor — the friendliest realistic case for tree embeddings.
    """
    check_positive("n", n)
    require(1 <= intrinsic_dim <= d, "intrinsic_dim must lie in [1, d]")
    rng = as_generator(seed)
    basis = np.linalg.qr(rng.normal(size=(d, intrinsic_dim)))[0]
    factors = rng.normal(size=(n, intrinsic_dim))
    pts = factors @ basis.T
    pts += rng.normal(0, noise * np.abs(pts).max(), size=pts.shape)
    lo, hi = pts.min(), pts.max()
    scaled = 1 + (pts - lo) / max(hi - lo, 1e-12) * (delta - 1)
    return np.rint(scaled).astype(np.float64)


def topic_model_cloud(
    n: int,
    d: int,
    delta: int,
    *,
    topics: int = 8,
    zipf_s: float = 1.5,
    spread: float = 0.02,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Zipf-weighted topic mixture: heavy-tailed cluster sizes.

    Returns ``(points, topic_labels)``.  Topic ``t`` is sampled with
    probability ∝ ``1 / (t+1)^zipf_s`` — a few huge clusters and a long
    tail of small ones.
    """
    check_positive("n", n)
    check_positive("topics", topics)
    require(zipf_s > 0, "zipf_s must be positive")
    rng = as_generator(seed)
    r_centers, r_labels, r_noise = spawn_many(rng, 3)

    weights = 1.0 / np.arange(1, topics + 1) ** zipf_s
    weights /= weights.sum()
    labels = r_labels.choice(topics, size=n, p=weights)
    centers = r_centers.uniform(0.15 * delta, 0.85 * delta, size=(topics, d))
    pts = centers[labels] + r_noise.normal(0, spread * delta, size=(n, d))
    pts = np.clip(np.rint(pts), 1, delta)
    return pts.astype(np.float64), labels.astype(np.int64)
