"""Paired point-set instances for Earth-Mover-distance experiments.

EMD (here: the minimum-cost perfect matching between two equal-size point
sets, a.k.a. geometric transportation with unit demands) needs *pairs* of
sets whose optimal cost we can reason about.  Three regimes:

* :func:`matched_pair_instance` — B is A plus small per-point noise, so
  the identity matching is near-optimal and OPT ≈ n·noise·√d;
* :func:`shifted_cloud_instance` — B is A translated by a fixed vector,
  OPT = n·‖shift‖ exactly (translation is the optimal transport);
* :func:`two_cluster_instance` — mass must move between distant
  clusters, stressing the top levels of the tree embedding.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.synthetic import gaussian_clusters, uniform_lattice
from repro.util.rng import SeedLike, as_generator, spawn_many
from repro.util.validation import check_positive


def matched_pair_instance(
    n: int, d: int, delta: int, *, noise: float = 0.01, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """A uniform cloud and a noisy copy of it."""
    rng = as_generator(seed)
    r1, r2 = spawn_many(rng, 2)
    a = uniform_lattice(n, d, delta, seed=r1)
    b = np.clip(np.rint(a + r2.normal(0, noise * delta, size=a.shape)), 1, delta)
    return a, b.astype(np.float64)


def shifted_cloud_instance(
    n: int, d: int, delta: int, *, shift_fraction: float = 0.2, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """A cloud and its translate by ``shift_fraction * Δ`` along axis 0.

    The optimal matching pairs each point with its own translate, so the
    exact EMD is ``n * shift`` (up to lattice rounding), giving a sharp
    reference value for approximation-ratio measurements.
    """
    check_positive("n", n)
    rng = as_generator(seed)
    margin = int(np.ceil(shift_fraction * delta))
    a = uniform_lattice(n, d, delta - margin, seed=rng)
    b = a.copy()
    b[:, 0] += margin
    return a, b


def two_cluster_instance(
    n: int, d: int, delta: int, *, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Sources in one corner cluster, sinks in the opposite corner."""
    check_positive("n", n)
    rng = as_generator(seed)
    r1, r2 = spawn_many(rng, 2)
    a = gaussian_clusters(n, d, delta, clusters=1, spread=0.02, seed=r1)
    b = gaussian_clusters(n, d, delta, clusters=1, spread=0.02, seed=r2)
    # Push the clusters to opposite corners.
    a = np.clip(a * 0.3, 1, delta)
    b = np.clip(delta - (delta - b) * 0.3, 1, delta)
    return np.rint(a).astype(np.float64), np.rint(b).astype(np.float64)
