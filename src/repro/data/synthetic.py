"""Synthetic point-set generators on the integer lattice ``[1, Δ]^d``.

All generators:

* take ``seed`` (anything :func:`repro.util.rng.as_generator` accepts),
* return a float64 array of shape ``(n, d)`` whose entries are integers
  in ``[1, Δ]``,
* deduplicate only when asked (``unique=True``) — the paper assumes
  distinct points when talking about aspect ratio, but algorithms must
  tolerate duplicates.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, require


def _clip_lattice(points: np.ndarray, delta: int) -> np.ndarray:
    """Round to integers and clip into ``[1, delta]``."""
    return np.clip(np.rint(points), 1, delta).astype(np.float64)


def _maybe_unique(points: np.ndarray, unique: bool, rng: np.random.Generator,
                  delta: int) -> np.ndarray:
    """Optionally resample collisions until all rows are distinct."""
    if not unique:
        return points
    n, d = points.shape
    require(
        delta**d >= n,
        f"cannot place {n} distinct points in a lattice of {delta}^{d} cells",
    )
    for _ in range(64):
        _, first = np.unique(points, axis=0, return_index=True)
        if len(first) == n:
            return points
        dup_mask = np.ones(n, dtype=bool)
        dup_mask[first] = False
        points[dup_mask] = rng.integers(1, delta + 1, size=(dup_mask.sum(), d))
    raise RuntimeError("failed to deduplicate points after 64 resampling passes")


def uniform_lattice(
    n: int, d: int, delta: int, *, seed: SeedLike = None, unique: bool = False
) -> np.ndarray:
    """``n`` points uniform over the lattice ``[1, Δ]^d``."""
    check_positive("n", n)
    check_positive("d", d)
    check_positive("delta", delta)
    rng = as_generator(seed)
    pts = rng.integers(1, delta + 1, size=(n, d)).astype(np.float64)
    return _maybe_unique(pts, unique, rng, delta)


def gaussian_clusters(
    n: int,
    d: int,
    delta: int,
    *,
    clusters: int = 4,
    spread: float = 0.02,
    seed: SeedLike = None,
    unique: bool = False,
) -> np.ndarray:
    """Mixture of ``clusters`` spherical Gaussians with std ``spread * Δ``.

    The canonical "realistic" workload: most pairwise distances are
    either intra-cluster (small) or inter-cluster (large), which is where
    tree embeddings shine and where MST/densest-ball experiments have
    interesting structure.
    """
    check_positive("n", n)
    check_positive("clusters", clusters)
    require(0 < spread < 1, f"spread must lie in (0, 1), got {spread}")
    rng = as_generator(seed)
    centers = rng.uniform(0.2 * delta, 0.8 * delta, size=(clusters, d))
    labels = rng.integers(0, clusters, size=n)
    pts = centers[labels] + rng.normal(0.0, spread * delta, size=(n, d))
    return _maybe_unique(_clip_lattice(pts, delta), unique, rng, delta)


def hypercube_corners(
    n: int, d: int, delta: int, *, jitter: float = 0.0, seed: SeedLike = None
) -> np.ndarray:
    """Points at (a sample of) the corners ``{1, Δ}^d``, optionally jittered.

    Maximizes spread in every dimension; a stress test for bucketed ball
    partitioning because every bucket sees widely separated projections.
    """
    check_positive("n", n)
    rng = as_generator(seed)
    corners = rng.integers(0, 2, size=(n, d)).astype(np.float64)
    pts = 1.0 + corners * (delta - 1)
    if jitter > 0:
        pts = pts + rng.normal(0.0, jitter * delta, size=(n, d))
    return _clip_lattice(pts, delta)


def line_points(
    n: int, d: int, delta: int, *, seed: SeedLike = None, noise: float = 0.0
) -> np.ndarray:
    """Evenly spaced points along a random direction through the box.

    Low intrinsic dimension embedded in high ambient dimension — the
    regime where JL preprocessing leaves structure fully intact.
    """
    check_positive("n", n)
    rng = as_generator(seed)
    direction = rng.normal(size=d)
    direction /= np.linalg.norm(direction)
    t = np.linspace(-0.5, 0.5, n)[:, None]
    center = np.full(d, (delta + 1) / 2.0)
    pts = center + t * direction * (delta - 1) / np.sqrt(d)
    if noise > 0:
        pts = pts + rng.normal(0.0, noise * delta, size=(n, d))
    return _clip_lattice(pts, delta)


def circle_points(
    n: int, d: int, delta: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Points on a random 2-plane circle inside the box.

    The classic hard instance for *deterministic* tree embedding
    (Rabinovich–Raz); probabilistic embeddings must handle it gracefully,
    which the distortion benchmarks verify.
    """
    check_positive("n", n)
    require(d >= 2, "circle_points needs d >= 2")
    rng = as_generator(seed)
    basis = np.linalg.qr(rng.normal(size=(d, 2)))[0]  # orthonormal 2-plane
    theta = np.linspace(0, 2 * np.pi, n, endpoint=False)
    plane = np.stack([np.cos(theta), np.sin(theta)], axis=1)
    center = np.full(d, (delta + 1) / 2.0)
    radius = 0.4 * (delta - 1)
    pts = center + radius * plane @ basis.T
    return _clip_lattice(pts, delta)
