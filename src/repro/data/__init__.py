"""Synthetic workload generators.

The paper proves worst-case bounds for *any* point set ``P ⊆ [Δ]^d``, so
reproduction experiments use controllable synthetic data: uniform lattice
points, Gaussian cluster mixtures, hypercube corners, and adversarial
shapes (lines, circles) that stress tree embeddings.  The generators
always return integer-valued coordinates inside ``[1, Δ]^d`` (the paper's
WLOG normalization) as float64 arrays.
"""

from repro.data.aspect import aspect_ratio, normalize_to_lattice
from repro.data.emd_instances import (
    matched_pair_instance,
    shifted_cloud_instance,
    two_cluster_instance,
)
from repro.data.synthetic import (
    circle_points,
    gaussian_clusters,
    hypercube_corners,
    line_points,
    uniform_lattice,
)

__all__ = [
    "uniform_lattice",
    "gaussian_clusters",
    "hypercube_corners",
    "line_points",
    "circle_points",
    "aspect_ratio",
    "normalize_to_lattice",
    "matched_pair_instance",
    "shifted_cloud_instance",
    "two_cluster_instance",
]
