"""Dense Gaussian JL in MPC — the baseline Theorem 3 improves upon.

Section 5: evaluating a dense ``k x d`` projection on ``n`` points in
O(1) rounds costs ``O(n d k)``-ish total space because the projection
matrix must be co-located with every shard of points.  We implement
exactly that layout: points sharded by rows, the full dense ``R``
regenerated on *every* machine from a broadcast seed (communication is
one word, but the model charges the ``k*d`` words of *storage* per
machine — which is the measured quantity that separates dense JL from
the FJLT, whose per-machine transform state is only
``d + O(ξ^{-2} log^3 n)`` words).

:func:`mpc_dense_jl` mirrors :func:`repro.jl.mpc_fjlt.mpc_fjlt` so the
two arms are directly comparable in the T3 benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.jl.dense import GaussianJL
from repro.mpc.accounting import fully_scalable_local_memory, machines_for
from repro.mpc.cluster import Cluster, RoundContext
from repro.mpc.config import SimulationConfig, fold_legacy_kwargs
from repro.mpc.executor import ExecutorLike
from repro.mpc.machine import Machine
from repro.mpc.primitives import broadcast, scatter_rows
from repro.results import TransformResult
from repro.util.rng import SeedLike, as_generator, derive_seed
from repro.util.validation import check_points, require


def _dense_jl_apply_step(machine: Machine, ctx: RoundContext) -> None:
    params = machine.get("djl/params")
    shard = machine.get("djl/in")
    if shard is None or shard.shape[0] == 0:
        machine.put("djl/out", np.empty((0, params["k"])))
        return
    transform = GaussianJL(params["d"], params["k"], seed=params["seed"])
    # The dense matrix is resident local state — the model charges it.
    machine.put("djl/matrix", transform._matrix)
    machine.put("djl/out", transform(shard))
    machine.pop("djl/in")


def mpc_dense_jl(
    points: np.ndarray,
    k: int,
    *,
    seed: SeedLike = None,
    cluster: Optional[Cluster] = None,
    eps: float = 0.6,
    memory_slack: float = 8.0,
    executor: ExecutorLike = None,
    config: Optional[SimulationConfig] = None,
) -> TransformResult:
    """Apply a dense Gaussian JL projection on the MPC simulator.

    Returns a :class:`~repro.results.TransformResult` (unpacks as the
    historical ``(embedded, cluster)`` pair); ``.report`` carries the
    accounting — note ``peak_total_resident_words`` includes one full
    ``k x d`` matrix per machine, the cost Theorem 3 removes.  All
    simulator knobs can also arrive bundled as a
    :class:`~repro.mpc.config.SimulationConfig` via ``config=``.
    """
    cfg = fold_legacy_kwargs(
        "mpc_dense_jl", config, eps=eps, memory_slack=memory_slack, executor=executor
    )
    pts = check_points(points, min_points=1)
    n, d = pts.shape
    require(k >= 1, f"k must be >= 1, got {k}")
    rng = as_generator(seed)
    transform_seed = derive_seed(rng)

    if cluster is None:
        local = fully_scalable_local_memory(n, d, cfg.eps, slack=cfg.memory_slack)
        machines = machines_for(n * d, max(local, k * d + d + k + 64))
        shard_rows = -(-n // machines)
        local = max(local, 2 * k * d + shard_rows * (d + k) + 512)
        cluster = Cluster.from_config(machines, local, cfg)

    scatter_rows(cluster, pts, "djl/in")
    broadcast(
        cluster, {"seed": transform_seed, "d": d, "k": k}, "djl/params", root=0
    )

    cluster.round(_dense_jl_apply_step, label="dense-jl-apply")

    shards = [
        m.get("djl/out")
        for m in cluster
        if m.get("djl/out") is not None and m.get("djl/out").shape[0] > 0
    ]
    embedded = np.concatenate(shards, axis=0)
    require(embedded.shape[0] == n, "dense JL lost rows — shard accounting bug")
    return TransformResult(embedded=embedded, cluster=cluster)
