"""Johnson–Lindenstrauss transforms, sequential and massively parallel.

* :mod:`~repro.jl.hadamard` — the fast Walsh–Hadamard transform ``H``
  (the (Z/2)^t discrete Fourier transform the FJLT rotates with);
* :mod:`~repro.jl.dense` — the classic dense Gaussian JL baseline whose
  extra ``log n`` total-space factor Section 5 of the paper shaves off;
* :mod:`~repro.jl.fjlt` — Ailon–Chazelle's ``φ(x) = k^{-1/2} P H D x``;
* :mod:`~repro.jl.mpc_fjlt` — Theorem 3's O(1)-round MPC evaluation,
  including the blocked-butterfly distributed Hadamard used when single
  points exceed local memory.
"""

from repro.jl.dense import GaussianJL
from repro.jl.fjlt import FJLT, target_dimension
from repro.jl.hadamard import fwht, fwht_inplace, hadamard_matrix, next_power_of_two
from repro.jl.mpc_dense import mpc_dense_jl
from repro.jl.mpc_fjlt import mpc_blocked_fwht, mpc_fjlt

__all__ = [
    "FJLT",
    "GaussianJL",
    "target_dimension",
    "fwht",
    "fwht_inplace",
    "hadamard_matrix",
    "next_power_of_two",
    "mpc_dense_jl",
    "mpc_fjlt",
    "mpc_blocked_fwht",
]
