"""Ailon–Chazelle's Fast Johnson–Lindenstrauss Transform (sequential).

``φ(x) = k^{-1/2} · P · H · D · x`` with

* ``D`` — random ±1 diagonal (d x d),
* ``H`` — normalized Walsh–Hadamard (the FWHT; d padded to a power of
  two — zero padding preserves distances),
* ``P`` — sparse k x d matrix whose entries are 0 with probability
  ``1 - q`` and ``N(0, 1/q)`` otherwise, with sparsity
  ``q = min(Θ(log² n / d), 1)``.

Normalization: ``H D`` is orthogonal, so ``‖HDx‖ = ‖x‖``; each row of
``P`` satisfies ``E[(P_i · y)²] = ‖y‖²``, hence dividing by ``√k`` makes
``E‖φ(x)‖² = ‖x‖²`` exactly, and concentration gives the ``(1 ± ξ)``
guarantee of Theorem 3 for ``k = Θ(ξ^{-2} log n)``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import sparse

from repro.jl.hadamard import fwht_inplace, next_power_of_two
from repro.util.rng import SeedLike, as_generator, spawn_many
from repro.util.validation import check_points, check_positive, require


def target_dimension(n: int, xi: float, *, c: float = 2.0) -> int:
    """Embedding dimension ``k = ceil(c ξ^{-2} ln n)`` of Theorem 3.

    ``c = 2`` keeps the failure probability across all ``n²`` pairs small
    in practice for the sizes our benchmarks use; the theorem's constant
    is unspecified, so benchmarks verify the (1±ξ) *shape*, not c.
    """
    check_positive("n", n)
    require(0 < xi < 0.5, f"xi must lie in (0, 0.5) per Theorem 3, got {xi}")
    return max(1, int(math.ceil(c * math.log(max(n, 2)) / (xi * xi))))


def sparsity_parameter(n: int, d_padded: int, *, c: float = 1.0) -> float:
    """FJLT sparsity ``q = min(c log² n / d, 1)`` (paper, Section 5)."""
    check_positive("n", n)
    check_positive("d_padded", d_padded)
    q = c * (math.log(max(n, 2)) ** 2) / d_padded
    return float(min(1.0, max(q, 1e-12)))


#: FIFO cache of regenerated transform plans, keyed by the full
#: (d, n, xi, k, q, seed) tuple — see :meth:`FJLT.cached`.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_LIMIT = 64
_PLAN_CACHE_STATS = {"hits": 0, "misses": 0}


def plan_cache_stats() -> dict:
    """Hit/miss counters of the :meth:`FJLT.cached` plan cache.

    The MPC FJLT's per-machine regeneration should cost one construction
    per (seed, shape) in the whole simulation — tests assert this via
    these counters.  Counters are per process: worker processes of the
    process round executor each keep their own (one construction per
    worker, amortized over its machine batch).
    """
    return dict(_PLAN_CACHE_STATS)


def clear_plan_cache() -> None:
    """Drop all cached plans and zero the hit/miss counters."""
    _PLAN_CACHE.clear()
    _PLAN_CACHE_STATS["hits"] = 0
    _PLAN_CACHE_STATS["misses"] = 0


class FJLT:
    """The FJLT ``φ : R^d -> R^k`` as a reusable transform object.

    One instance fixes the random ``D`` and ``P``; calling it on any
    point set applies the same map, so distances between points embedded
    by the same instance are comparable (as the tree-embedding pipeline
    requires).

    Parameters
    ----------
    d:
        Input dimensionality.
    n:
        Number of points the guarantee must cover (sets ``k`` and ``q``).
    xi:
        Distortion parameter in ``(0, 0.5)``.
    k:
        Override the output dimension (default :func:`target_dimension`).
    q:
        Override the sparsity (default :func:`sparsity_parameter`).
    """

    def __init__(
        self,
        d: int,
        n: int,
        *,
        xi: float = 0.4,
        k: Optional[int] = None,
        q: Optional[float] = None,
        seed: SeedLike = None,
    ):
        check_positive("d", d)
        check_positive("n", n)
        self.d = d
        self.n = n
        self.xi = xi
        self.d_padded = next_power_of_two(d)
        self.k = k if k is not None else target_dimension(n, xi)
        self.q = q if q is not None else sparsity_parameter(n, self.d_padded)
        require(0 < self.q <= 1, f"q must lie in (0, 1], got {self.q}")
        check_positive("k", self.k)

        rng = as_generator(seed)
        r_signs, r_sparse = spawn_many(rng, 2)
        self.signs = r_signs.choice(np.array([-1.0, 1.0]), size=self.d_padded)
        self.projection = self._sample_projection(r_sparse)

    def _sample_projection(self, rng: np.random.Generator) -> sparse.csr_matrix:
        """Sample the sparse Gaussian ``P`` (k x d_padded, CSR)."""
        nnz_mask_counts = rng.binomial(self.d_padded, self.q, size=self.k)
        rows = np.repeat(np.arange(self.k), nnz_mask_counts)
        cols = np.concatenate(
            [
                rng.choice(self.d_padded, size=c, replace=False)
                for c in nnz_mask_counts
            ]
        ) if nnz_mask_counts.sum() else np.empty(0, dtype=np.int64)
        values = rng.normal(0.0, 1.0 / math.sqrt(self.q), size=rows.shape[0])
        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(self.k, self.d_padded)
        )

    @property
    def nnz(self) -> int:
        """Number of nonzeros in ``P`` (Theorem 3's |P| ~ Binom(dk, q))."""
        return int(self.projection.nnz)

    def __call__(self, points: np.ndarray) -> np.ndarray:
        """Apply ``φ`` to an ``(n, d)`` point set, returning ``(n, k)``.

        The batch path: one scratch allocation fuses the zero-padding
        with the ``D`` sign flip, the Hadamard mix runs through the
        blocked in-place FWHT kernel, and the sparse ``P`` multiply hits
        the whole matrix at once.
        """
        pts = check_points(points, dims=self.d)
        mixed = np.zeros((pts.shape[0], self.d_padded), dtype=np.float64)
        np.multiply(pts, self.signs[: self.d], out=mixed[:, : self.d])  # D
        fwht_inplace(mixed)  # H (orthonormal)
        return (self.projection @ mixed.T).T / math.sqrt(self.k)

    @classmethod
    def cached(
        cls,
        d: int,
        n: int,
        *,
        xi: float = 0.4,
        k: Optional[int] = None,
        q: Optional[float] = None,
        seed: int = 0,
    ) -> "FJLT":
        """Memoized constructor for seed-derived transform plans.

        The MPC evaluation (Algorithm 3) broadcasts an O(1)-word seed and
        has every machine regenerate the *same* ``D`` and ``P`` locally;
        in the simulator those machines share one process, so the
        regeneration is memoized on the full parameter tuple.  ``seed``
        must be hashable (the integer :func:`repro.util.rng.derive_seed`
        produces) — unhashable seeds should use the plain constructor.
        """
        key = (d, n, xi, k, q, seed)
        plan = _PLAN_CACHE.get(key)
        if plan is None:
            _PLAN_CACHE_STATS["misses"] += 1
            plan = cls(d, n, xi=xi, k=k, q=q, seed=seed)
            if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
                _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
            _PLAN_CACHE[key] = plan
        else:
            _PLAN_CACHE_STATS["hits"] += 1
        return plan

    def total_space_words(self, n: int) -> int:
        """MPC total-space cost: ``O(n d + ξ^{-2} n log³ n)`` (Theorem 3).

        ``n d`` to hold the input plus ``|P| ≈ q d k = Θ(ξ^{-2} log³ n)``
        products per point for the sparse multiply.
        """
        return n * self.d + n * max(1, self.nnz)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FJLT(d={self.d}, k={self.k}, q={self.q:.4g}, "
            f"d_padded={self.d_padded}, nnz={self.nnz})"
        )
