"""Classic dense Gaussian Johnson–Lindenstrauss baseline.

``φ(x) = k^{-1/2} R x`` with ``R`` a dense ``k x d`` i.i.d. standard
Gaussian matrix.  Applying it to ``n`` points is a general matrix
multiplication, which in MPC costs ``O(n d k) = O(n d log n)`` total
space to do in constant rounds — the factor Section 5 of the paper
removes with the FJLT.  We keep the dense transform as (a) the
correctness baseline for FJLT's distance preservation and (b) the
comparison arm of the total-space benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_points, check_positive


class GaussianJL:
    """Dense Gaussian JL transform ``R^d -> R^k``.

    Parameters
    ----------
    d, k:
        Input and output dimensions.
    seed:
        Randomness for the projection matrix.
    """

    def __init__(self, d: int, k: int, *, seed: SeedLike = None):
        check_positive("d", d)
        check_positive("k", k)
        self.d = d
        self.k = k
        rng = as_generator(seed)
        self._matrix = rng.normal(size=(k, d)) / np.sqrt(k)

    def __call__(self, points: np.ndarray) -> np.ndarray:
        """Project an ``(n, d)`` point set to ``(n, k)``."""
        pts = check_points(points, dims=self.d)
        return pts @ self._matrix.T

    def total_space_words(self, n: int) -> int:
        """MPC total-space cost of the dense transform: O(n d k).

        Constant-round dense matrix multiplication replicates one operand
        across the partitioning of the other, so the intermediate volume
        is the full n*d*k products (before reduction).
        """
        return n * self.d * self.k

    def __repr__(self) -> str:  # pragma: no cover
        return f"GaussianJL(d={self.d}, k={self.k})"
