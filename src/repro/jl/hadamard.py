"""Fast Walsh–Hadamard transform (FWHT).

The FJLT's mixing matrix ``H`` is the normalized Walsh–Hadamard matrix
``H_{ij} = d^{-1/2} (-1)^{<i-1, j-1>}`` — the discrete Fourier transform
over ``(Z/2Z)^t`` for ``d = 2^t``.  We implement the ``O(d log d)``
butterfly, fully vectorized across a batch axis so a whole point set is
transformed with ``log d`` numpy passes and no Python loop over points.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_power_of_two


def next_power_of_two(d: int) -> int:
    """Smallest power of two >= d (the FJLT's zero-padding width)."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    return 1 << (d - 1).bit_length()


#: Target working-set size (in float64 elements) of one FWHT row block.
#: 2^18 elements = 2 MiB — sized to keep a block resident in L2/L3 while
#: the log(d) butterfly passes sweep over it.
_FWHT_BLOCK_ELEMENTS = 1 << 18


def _fwht_rows_inplace(block: np.ndarray) -> None:
    """Un-normalized butterfly over the rows of a C-contiguous 2-D array.

    Allocation-free: each stage rewrites the two butterfly halves with
    three in-place passes (``a += b; b *= -2; b += a`` maps ``(a, b)`` to
    ``(a + b, a - b)``) instead of materializing a temporary copy.
    """
    m, d = block.shape
    h = 1
    while h < d:
        view = block.reshape(m, d // (2 * h), 2, h)
        a = view[:, :, 0, :]
        b = view[:, :, 1, :]
        a += b
        b *= -2.0
        b += a
        h *= 2


def fwht_inplace(
    matrix: np.ndarray, *, normalize: bool = True, block_rows: int | None = None
) -> np.ndarray:
    """Blocked in-place Walsh–Hadamard transform of an ``(n, d)`` matrix.

    The hot path of the batched FJLT: rows are transformed in blocks of
    ``block_rows`` (default sized so one block's working set stays
    cache-resident) and no temporaries are allocated, so transforming a
    large point set costs exactly ``log2(d)`` passes over memory.

    ``matrix`` must be a C-contiguous float64 array whose last dimension
    is a power of two; it is modified in place and also returned (for
    chaining).  Use :func:`fwht` for the general copying/axis-flexible
    form.
    """
    if not isinstance(matrix, np.ndarray) or matrix.ndim != 2:
        raise ValueError("fwht_inplace needs a 2-D numpy array")
    if matrix.dtype != np.float64 or not matrix.flags.c_contiguous:
        raise ValueError("fwht_inplace needs a C-contiguous float64 array")
    n, d = matrix.shape
    check_power_of_two("transform length", d)
    if block_rows is None:
        block_rows = max(1, _FWHT_BLOCK_ELEMENTS // d)
    for start in range(0, n, block_rows):
        _fwht_rows_inplace(matrix[start : start + block_rows])
    if normalize:
        matrix *= 1.0 / np.sqrt(d)
    return matrix


def fwht(x: np.ndarray, *, axis: int = -1, normalize: bool = True) -> np.ndarray:
    """Walsh–Hadamard transform along ``axis``.

    Parameters
    ----------
    x:
        Real array whose length along ``axis`` is a power of two.
    normalize:
        When True (default) scales by ``d^{-1/2}`` so the transform is
        orthonormal (``fwht(fwht(x)) == x`` and norms are preserved) —
        the convention the FJLT analysis uses.

    Returns a new array; the input is never modified.  Internally one
    copy is made and handed to the blocked in-place kernel
    (:func:`fwht_inplace`).
    """
    x = np.asarray(x, dtype=np.float64)
    x = np.moveaxis(x, axis, -1)
    d = x.shape[-1]
    check_power_of_two("transform length", d)
    batch = x.shape[:-1]
    out = x.reshape(-1, d).astype(np.float64, order="C", copy=True)
    fwht_inplace(out, normalize=normalize)
    out = out.reshape(*batch, d)
    return np.moveaxis(out, -1, axis)


def hadamard_matrix(d: int, *, normalize: bool = True) -> np.ndarray:
    """Materialize the (normalized) d x d Walsh–Hadamard matrix.

    Only used by tests and tiny examples — the whole point of the FJLT is
    never to build this densely.
    """
    check_power_of_two("d", d)
    h = np.array([[1.0]])
    while h.shape[0] < d:
        h = np.block([[h, h], [h, -h]])
    if normalize:
        h = h / np.sqrt(d)
    return h


def pad_to_power_of_two(points: np.ndarray) -> np.ndarray:
    """Zero-pad the feature axis of an ``(n, d)`` array to a power of two.

    Padding with zeros leaves Euclidean norms and distances unchanged, so
    the JL guarantee is unaffected.  Returns the input itself when ``d``
    is already a power of two.
    """
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    d2 = next_power_of_two(d)
    if d2 == d:
        return pts
    padded = np.zeros((n, d2), dtype=np.float64)
    padded[:, :d] = pts
    return padded
