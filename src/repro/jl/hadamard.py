"""Fast Walsh–Hadamard transform (FWHT).

The FJLT's mixing matrix ``H`` is the normalized Walsh–Hadamard matrix
``H_{ij} = d^{-1/2} (-1)^{<i-1, j-1>}`` — the discrete Fourier transform
over ``(Z/2Z)^t`` for ``d = 2^t``.  We implement the ``O(d log d)``
butterfly, fully vectorized across a batch axis so a whole point set is
transformed with ``log d`` numpy passes and no Python loop over points.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_power_of_two


def next_power_of_two(d: int) -> int:
    """Smallest power of two >= d (the FJLT's zero-padding width)."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    return 1 << (d - 1).bit_length()


def fwht(x: np.ndarray, *, axis: int = -1, normalize: bool = True) -> np.ndarray:
    """Walsh–Hadamard transform along ``axis``.

    Parameters
    ----------
    x:
        Real array whose length along ``axis`` is a power of two.
    normalize:
        When True (default) scales by ``d^{-1/2}`` so the transform is
        orthonormal (``fwht(fwht(x)) == x`` and norms are preserved) —
        the convention the FJLT analysis uses.

    Returns a new array; the input is never modified.
    """
    x = np.asarray(x, dtype=np.float64)
    x = np.moveaxis(x, axis, -1)
    d = x.shape[-1]
    check_power_of_two("transform length", d)
    batch = x.shape[:-1]
    out = x.reshape(-1, d).copy()

    h = 1
    while h < d:
        # View as (batch, d/2h, 2, h): butterfly pairs are [..., 0, :] and
        # [..., 1, :], combined with one vectorized add/sub per stage.
        view = out.reshape(-1, d // (2 * h), 2, h)
        a = view[:, :, 0, :].copy()
        b = view[:, :, 1, :]
        view[:, :, 0, :] = a + b
        view[:, :, 1, :] = a - b
        h *= 2

    out = out.reshape(*batch, d)
    if normalize:
        out /= np.sqrt(d)
    return np.moveaxis(out, -1, axis)


def hadamard_matrix(d: int, *, normalize: bool = True) -> np.ndarray:
    """Materialize the (normalized) d x d Walsh–Hadamard matrix.

    Only used by tests and tiny examples — the whole point of the FJLT is
    never to build this densely.
    """
    check_power_of_two("d", d)
    h = np.array([[1.0]])
    while h.shape[0] < d:
        h = np.block([[h, h], [h, -h]])
    if normalize:
        h = h / np.sqrt(d)
    return h


def pad_to_power_of_two(points: np.ndarray) -> np.ndarray:
    """Zero-pad the feature axis of an ``(n, d)`` array to a power of two.

    Padding with zeros leaves Euclidean norms and distances unchanged, so
    the JL guarantee is unaffected.  Returns the input itself when ``d``
    is already a power of two.
    """
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    d2 = next_power_of_two(d)
    if d2 == d:
        return pts
    padded = np.zeros((n, d2), dtype=np.float64)
    padded[:, :d] = pts
    return padded
