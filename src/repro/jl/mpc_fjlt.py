"""Theorem 3: the Fast Johnson–Lindenstrauss Transform in O(1) MPC rounds.

Two entry points:

* :func:`mpc_fjlt` — Algorithm 3 end to end.  Points are sharded by rows;
  a single O(1)-word seed is broadcast and every machine derives the
  *common* random ``D`` and ``P`` from it locally (the standard shared-
  randomness trick: shipping a seed costs one word where shipping the
  matrices would cost ``d + q d k`` words; all machines then hold the
  identical transform).  Each machine applies ``D``, the FWHT, and the
  sparse ``P`` to its shard — pure local computation, so the whole
  transform costs the broadcast rounds plus one compute round.

* :func:`mpc_blocked_fwht` — the distributed Hadamard used when a single
  point does **not** fit in local memory (the regime where the paper
  invokes the MPC FFT of Hajiaghayi et al.).  Coordinates are sharded in
  blocks across machines; butterfly stages inside a block are local, and
  the ``log2(m)`` cross-machine stages are grouped ``g`` at a time into
  radix-``2^g`` all-to-all exchanges, giving ``ceil(log2(m)/g)`` rounds —
  the ``O(1/eps)`` blocked schedule.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Optional

import numpy as np

from repro.jl.fjlt import FJLT
from repro.jl.hadamard import fwht_inplace
from repro.mpc.accounting import fully_scalable_local_memory, machines_for
from repro.mpc.cluster import Cluster, RoundContext
from repro.mpc.config import SimulationConfig, fold_legacy_kwargs
from repro.mpc.executor import ExecutorLike
from repro.mpc.faults import FaultPlan, RecoveryLike
from repro.mpc.machine import Machine
from repro.mpc.primitives import broadcast, scatter_rows
from repro.results import FWHTResult, TransformResult
from repro.util.rng import SeedLike, as_generator, derive_seed
from repro.util.validation import check_points, check_power_of_two, require


def _fjlt_apply_step(machine: Machine, ctx: RoundContext) -> None:
    """Apply the seed-derived transform to this machine's shard.

    Every machine regenerates the identical transform from the broadcast
    seed; :meth:`FJLT.cached` memoizes the derivation per process, so
    machines sharing one process (all of them under the serial/thread
    executors, a worker's batch under the process executor) construct
    ``D``/``P`` once and reuse the plan.
    """
    params = machine.get("fjlt/params")
    shard = machine.get("fjlt/in")
    if shard is None or shard.shape[0] == 0:
        machine.put("fjlt/out", np.empty((0, 1)))
        return
    transform = FJLT.cached(
        params["d"],
        params["n"],
        xi=params["xi"],
        k=params["k"],
        q=params["q"],
        seed=params["seed"],
    )
    machine.put("fjlt/out", transform(shard))
    machine.pop("fjlt/in")


def mpc_fjlt(
    points: np.ndarray,
    *,
    xi: float = 0.4,
    k: Optional[int] = None,
    q: Optional[float] = None,
    seed: SeedLike = None,
    cluster: Optional[Cluster] = None,
    eps: float = 0.6,
    memory_slack: float = 8.0,
    executor: ExecutorLike = None,
    faults: Optional[FaultPlan] = None,
    recovery: RecoveryLike = None,
    config: Optional[SimulationConfig] = None,
) -> TransformResult:
    """Run Algorithm 3 on a (possibly caller-provided) cluster.

    Returns a :class:`~repro.results.TransformResult` whose
    ``.embedded`` is the ``(n, k)`` output collected god-view style and
    whose ``.report``/``.metrics`` carry the round/space accounting that
    Theorem 3 bounds; it unpacks as the historical ``(embedded,
    cluster)`` pair.

    When ``cluster`` is None one is sized automatically: local memory
    ``memory_slack * (n d)^eps`` words and enough machines to hold the
    input (the fully scalable regime); ``executor`` selects how the
    simulated machines are scheduled (results are identical for every
    choice), and ``faults``/``recovery`` inject a seeded
    :class:`~repro.mpc.faults.FaultPlan` with a replay budget (the
    embedding and accounting stay bit-identical to a fault-free run).  A
    caller-provided cluster keeps its own executor and fault plan.
    Every simulator knob can instead arrive bundled in one
    :class:`~repro.mpc.config.SimulationConfig` via ``config=``; setting
    the same axis both ways raises ``ValueError``.
    """
    cfg = fold_legacy_kwargs(
        "mpc_fjlt",
        config,
        eps=eps,
        memory_slack=memory_slack,
        executor=executor,
        faults=faults,
        recovery=recovery,
    )
    pts = check_points(points, min_points=1)
    n, d = pts.shape
    rng = as_generator(seed)
    transform_seed = derive_seed(rng)

    if cluster is None:
        local = fully_scalable_local_memory(n, d, cfg.eps, slack=cfg.memory_slack)
        # A machine must hold its in+out shard rows, the regenerated
        # transform (signs + sparse P), and the padded working copy; grow
        # the budget when the fully scalable target is below that floor.
        template = FJLT.cached(d, n, xi=xi, k=k, q=q, seed=transform_seed)
        transform_words = 2 * template.d_padded + 3 * template.nnz + 64
        row_words = d + 2 * template.d_padded + template.k
        machines = machines_for(n * d, max(local, transform_words + row_words))
        shard_rows = -(-n // machines)
        local = max(local, transform_words + shard_rows * row_words + 512)
        cluster = Cluster.from_config(machines, local, cfg)
    else:
        require(
            cfg.faults is None and cfg.recovery is None,
            "pass faults/recovery (directly or via config=) when constructing "
            "the cluster, not alongside a caller-provided one",
        )

    scatter_rows(cluster, pts, "fjlt/in")
    broadcast(cluster, {"seed": transform_seed, "n": n, "d": d,
                        "xi": xi, "k": k, "q": q}, "fjlt/params", root=0)

    cluster.round(_fjlt_apply_step, label="fjlt-apply")

    out_shards = [
        m.get("fjlt/out")
        for m in cluster
        if m.get("fjlt/out") is not None and m.get("fjlt/out").shape[0] > 0
    ]
    embedded = np.concatenate(out_shards, axis=0)
    require(embedded.shape[0] == n, "FJLT output lost rows — shard accounting bug")
    return TransformResult(embedded=embedded, cluster=cluster)


def _group_hadamard_signs(g: int) -> np.ndarray:
    """The 2^g x 2^g un-normalized Hadamard sign matrix over block indices."""
    size = 1 << g
    b = np.arange(size)
    # (-1)^{popcount(b & c)} via bit tricks, vectorized.
    anded = b[:, None] & b[None, :]
    pop = np.zeros_like(anded)
    tmp = anded.copy()
    while tmp.any():
        pop += tmp & 1
        tmp >>= 1
    return np.where(pop % 2 == 0, 1.0, -1.0)


def _fwht_local_step(machine: Machine, ctx: RoundContext) -> None:
    out = np.ascontiguousarray(machine.get("fwht/block"), dtype=np.float64)
    fwht_inplace(out, normalize=False)
    machine.put("fwht/block", out)


def _fwht_exchange_step(
    machine: Machine, ctx: RoundContext, *, mask: int, bit: int, g: int
) -> None:
    j = machine.machine_id
    base = j & ~mask
    for c in range(1 << g):
        peer = base | (c << bit)
        if peer != j:
            ctx.send(peer, machine.get("fwht/block"), tag="fwht/x")


def _fwht_combine_step(
    machine: Machine, ctx: RoundContext, *, mask: int, bit: int, signs: np.ndarray
) -> None:
    j = machine.machine_id
    mine = (j & mask) >> bit
    blocks = {mine: machine.get("fwht/block")}
    for msg in machine.take_inbox(tag="fwht/x"):
        blocks[(msg.src & mask) >> bit] = msg.payload
    acc = np.zeros_like(blocks[mine])
    for c, payload in blocks.items():
        acc += signs[mine, c] * payload
    machine.put("fwht/block", acc)


def mpc_blocked_fwht(
    vectors: np.ndarray,
    num_machines: int,
    *,
    radix_bits: int = 2,
    local_memory: Optional[int] = None,
    normalize: bool = True,
    executor: ExecutorLike = None,
    config: Optional[SimulationConfig] = None,
) -> FWHTResult:
    """Distributed FWHT over coordinate-sharded vectors.

    ``vectors`` is ``(batch, d)`` with ``d`` and ``num_machines`` powers
    of two, ``num_machines <= d``.  Machine ``j`` holds the coordinate
    block ``[j*B, (j+1)*B)`` of every vector (``B = d/m``).  Local
    butterfly stages run for free inside blocks; the ``log2(m)`` cross
    stages run ``radix_bits`` at a time via group all-to-alls.

    Returns a :class:`~repro.results.FWHTResult` (unpacks as the
    historical ``(transformed, report)`` pair) whose report has
    ``rounds == ceil(log2(m)/radix_bits)`` plus the final no-op, which
    the cost benchmark asserts.
    """
    cfg = fold_legacy_kwargs("mpc_blocked_fwht", config, executor=executor)
    vec = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
    batch, d = vec.shape
    check_power_of_two("d", d)
    check_power_of_two("num_machines", num_machines)
    require(num_machines <= d, "need at least one coordinate per machine")
    require(radix_bits >= 1, "radix_bits must be >= 1")

    block = d // num_machines
    cross_bits = int(math.log2(num_machines))
    if local_memory is None:
        # Group members hold 2^g blocks of the whole batch simultaneously.
        local_memory = 8 * (1 << radix_bits) * block * batch + 256

    cluster = Cluster.from_config(num_machines, local_memory, cfg)
    for j in range(num_machines):
        cluster.load(j, "fwht/block", vec[:, j * block : (j + 1) * block].copy())

    # Local stages: un-normalized FWHT of each block (h = 1 .. B/2),
    # through the same allocation-free butterfly the sequential batch
    # kernel uses.
    cluster.round(_fwht_local_step, label="fwht-local")

    # Cross stages, radix_bits at a time over block-index bits low→high.
    bit = 0
    while bit < cross_bits:  # mpclint: rounds=O(log2(m)/radix_bits)
        g = min(radix_bits, cross_bits - bit)
        signs = _group_hadamard_signs(g)
        group_mask = ((1 << g) - 1) << bit

        cluster.round(
            partial(_fwht_exchange_step, mask=group_mask, bit=bit, g=g),
            label=f"fwht-exchange@{bit}",
        )
        cluster.round(
            partial(_fwht_combine_step, mask=group_mask, bit=bit, signs=signs),
            label=f"fwht-combine@{bit}",
        )
        bit += g

    result = np.concatenate(
        [cluster.machine(j).get("fwht/block") for j in range(num_machines)], axis=1
    )
    if normalize:
        result = result / math.sqrt(d)
    return FWHTResult(transformed=result, report=cluster.report(), cluster=cluster)
