"""Clustering on top of the tree embedding.

Two complementary flat-clustering routes, both O(n · L)-ish once the
embedding exists (no pairwise distance matrix):

* :func:`tree_single_linkage` — cut the ``k-1`` heaviest edges of the
  tree-derived spanning tree (the classic single-linkage equivalence,
  with the approximate MST standing in for the exact one);
* :func:`level_clustering` — take the hierarchy level whose cluster
  count is closest to (without exceeding) ``k``; zero extra work, the
  multi-resolution structure is already there.

Both return integer labels ``0..k'-1`` with ``k' <= k``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.apps.mst import tree_mst
from repro.tree.hst import HSTree
from repro.util.validation import check_points, check_positive, require


def _components(n: int, edges: np.ndarray) -> np.ndarray:
    """Union-find connected components (labels canonical 0..c-1)."""
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for a, b in edges:
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[ra] = rb
    roots = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)
    _, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64)


def tree_single_linkage(
    tree: HSTree, points: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-linkage-style k-clustering via the tree MST.

    Builds the embedding's spanning tree, removes the ``k-1`` longest
    (Euclidean) edges, and labels the resulting components.  Returns
    ``(labels, cut_lengths)``.
    """
    pts = check_points(points)
    check_positive("k", k)
    require(pts.shape[0] == tree.n, "points/tree size mismatch")
    n = pts.shape[0]
    require(k <= n, f"cannot form {k} clusters from {n} points")

    st = tree_mst(tree, pts)
    if st.num_edges == 0 or k == 1:
        return np.zeros(n, dtype=np.int64), np.empty(0)

    lengths = np.linalg.norm(
        pts[st.edges[:, 0]] - pts[st.edges[:, 1]], axis=1
    )
    cuts = min(k - 1, st.num_edges)
    order = np.argsort(lengths)
    keep = order[: st.num_edges - cuts]
    labels = _components(n, st.edges[keep])
    cut_lengths = np.sort(lengths[order[st.num_edges - cuts :]])[::-1]
    return labels, cut_lengths


def level_clustering(tree: HSTree, k: int) -> Tuple[np.ndarray, int]:
    """Flat clustering from the deepest hierarchy level with <= k clusters.

    Returns ``(labels, level)``.  Free given the embedding; clusters are
    guaranteed to have tree-diameter at most ``2 * suffix(level)``.
    """
    check_positive("k", k)
    counts = tree.clusters_per_level()
    eligible = np.flatnonzero(counts <= k)
    level = int(eligible.max())
    row = tree.label_matrix[level]
    _, labels = np.unique(row, return_inverse=True)
    return labels.astype(np.int64), level


def clustering_agreement(labels_a: np.ndarray, labels_b: np.ndarray,
                         *, sample_pairs: Optional[int] = 20000,
                         seed: int = 0) -> float:
    """Pairwise co-clustering agreement (Rand-index style) of two labelings."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    require(a.shape == b.shape, "labelings must cover the same points")
    n = a.shape[0]
    if n < 2:
        return 1.0
    if sample_pairs is None or n * (n - 1) // 2 <= sample_pairs:
        iu, ju = np.triu_indices(n, k=1)
    else:
        rng = np.random.default_rng(seed)
        iu = rng.integers(0, n, size=sample_pairs)
        ju = rng.integers(0, n, size=sample_pairs)
        keep = iu != ju
        iu, ju = iu[keep], ju[keep]
    same_a = a[iu] == a[ju]
    same_b = b[iu] == b[ju]
    return float((same_a == same_b).mean())
