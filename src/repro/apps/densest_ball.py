"""Densest ball via tree embedding (Corollary 1(1)).

Problem: given a target diameter ``D``, find the ball of diameter ``D``
containing the most points.  An ``(α, β)``-approximation returns a
cluster with at least ``α · OPT`` points whose diameter is at most
``β · D`` — the paper proves
``(1 - O(1/log log n), O(log^1.5 n))`` in O(1) MPC rounds, the first
MPC result for the problem.

Tree algorithm: pick the deepest hierarchy level whose scale ``w`` still
satisfies ``w >= c · D`` (so a diameter-``D`` ball is unlikely to be cut
there — Lemma 1 gives cut probability ``O(sqrt(d) D / w)``), and return
the largest cluster at that level.  The cluster's diameter is bounded by
``2 sqrt(r) w``, the β violation.

Exact baseline: every point as candidate center with radius ``D`` —
any diameter-``D`` ball is contained in the radius-``D`` ball around any
of its members, so ``max_p |B(p, D)| >= OPT``; we also report the
radius-``D/2`` point-centered count as a lower envelope for OPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial.distance import cdist

from repro.geometry.metrics import diameter as exact_diameter
from repro.tree.hst import HSTree
from repro.util.validation import check_points, check_positive, require


@dataclass(frozen=True)
class DensestBallResult:
    """Output of a densest-ball computation."""

    count: int
    members: np.ndarray
    diameter_bound: float
    level: int

    @property
    def size(self) -> int:
        return self.count


def exact_densest_ball(points: np.ndarray, target_diameter: float,
                       *, radius_factor: float = 0.5) -> DensestBallResult:
    """Point-centered exact scan: best ball of radius ``factor * D``.

    ``radius_factor = 0.5`` gives balls of diameter exactly ``D``
    (centered at data points — a lower bound on the unrestricted OPT);
    ``radius_factor = 1.0`` gives the standard 2-relaxed upper envelope
    ``max_p |B(p, D)| >= OPT``.
    """
    pts = check_points(points)
    check_positive("target_diameter", target_diameter)
    dists = cdist(pts, pts)
    counts = (dists <= radius_factor * target_diameter).sum(axis=1)
    center = int(np.argmax(counts))
    members = np.flatnonzero(dists[center] <= radius_factor * target_diameter)
    return DensestBallResult(
        count=int(counts[center]),
        members=members,
        diameter_bound=2.0 * radius_factor * target_diameter,
        level=-1,
    )


def tree_densest_ball(
    tree: HSTree,
    target_diameter: float,
    *,
    r: int = 1,
    scale_factor: Optional[float] = None,
    points: Optional[np.ndarray] = None,
) -> DensestBallResult:
    """Corollary 1(1): densest ball from the hierarchy.

    Parameters
    ----------
    tree:
        An HST built with bucket count ``r`` (needed for the diameter
        bound ``2 sqrt(r) w``).
    target_diameter:
        The ball diameter ``D``.
    scale_factor:
        Choose the deepest level with scale
        ``w >= scale_factor * D``; default ``sqrt(d_tree_levels)``-free
        heuristic 2.0 — the bicriteria knob trading count (α) against
        diameter violation (β).
    points:
        When provided, the result's ``diameter_bound`` is replaced by the
        cluster's *measured* diameter.
    """
    check_positive("target_diameter", target_diameter)
    factor = 2.0 if scale_factor is None else scale_factor
    require(factor > 0, "scale_factor must be positive")

    # Level scales are encoded in level weights: weight = 2 sqrt(r) w.
    scales = tree.level_weights / (2.0 * np.sqrt(r))
    eligible = np.flatnonzero(scales >= factor * target_diameter)
    # Level `lvl` label row corresponds to weights index lvl-1.
    level = int(eligible.max()) + 1 if eligible.size else 0

    if level == 0:
        # Even the root scale is below the target: the whole point set.
        members = np.arange(tree.n)
        bound = float("inf")
    else:
        row = tree.label_matrix[level]
        counts = np.bincount(row)
        best = int(np.argmax(counts))
        members = np.flatnonzero(row == best)
        bound = float(2.0 * np.sqrt(r) * scales[level - 1])

    measured = bound
    if points is not None and members.size:
        measured = exact_diameter(np.asarray(points)[members]) if members.size > 1 else 0.0

    return DensestBallResult(
        count=int(members.size),
        members=members,
        diameter_bound=float(measured),
        level=level,
    )
