"""Exact k-median on the tree metric.

k-median is *the* historical motivation for probabilistic tree
embeddings: Bartal's and FRT's embeddings gave the first polylog
approximations by solving the problem exactly on the tree.  This module
implements that tree-side exact solver for our HSTs.

Formulation: choose at most ``k`` facility points; each point connects
to its nearest facility at its tree distance; minimize total connection
cost.  The DP extends the facility-location recursion of
:mod:`repro.apps.tree_dp` with a facility-count dimension:

``A(v, D, j)`` — minimum connection cost of subtree ``v`` given that the
nearest facility *outside* v is at distance ``D`` and exactly ``j``
facilities are placed inside v.  At an internal node the children are
folded left-to-right with a knapsack over facility counts, case-split on
whether zero, one, or at least two children receive facilities (which
determines whether a child with facilities sees external distance ``D``
or ``min(D, Dv)``, ``Dv`` being the fixed cross-child distance of an
HST node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.tree.hst import HSTree
from repro.tree.metric import tree_distances_from_point
from repro.util.validation import check_positive, require

_INF = float("inf")


@dataclass(frozen=True)
class KMedianResult:
    """Outcome of the exact tree k-median DP."""

    cost: float
    k: int


def tree_k_median_cost(tree: HSTree, k: int) -> KMedianResult:
    """Minimum total connection cost using at most ``k`` facilities.

    Exact under the tree metric.  ``O(nodes * L * k^2)`` time — intended
    for the moderate k regime of the classic application.
    """
    check_positive("k", k)
    require(k <= tree.n, f"k={k} exceeds the number of points {tree.n}")
    nodes = tree.nodes
    children = nodes.children()
    suffix = tree.suffix_weights

    dist_values = [2.0 * float(s) for s in suffix] + [_INF]
    nd = len(dist_values)

    def mixed_index(di: int, dv: float) -> int:
        value = min(dist_values[di], dv)
        for i, d in enumerate(dist_values):
            if d == value:
                return i
        raise AssertionError("mixed distance missing from candidate set")

    # tables[v][di][j] = A(v, D_di, j); j ranges 0..k.
    tables: Dict[int, np.ndarray] = {}

    order = [int(v) for v in np.argsort(-nodes.level, kind="stable")]
    for v in order:
        kids = children.get(v, [])
        table = np.full((nd, k + 1), _INF)
        if not kids:
            count = int(nodes.members[v].size)
            for di, D in enumerate(dist_values):
                table[di, 0] = count * D if D < _INF else _INF
                if k >= 1:
                    table[di, 1:] = 0.0  # facility at this point
            tables[v] = table
            continue

        lvl = int(nodes.level[v])
        dv = 2.0 * float(suffix[lvl])
        total = int(nodes.members[v].size)
        for di, D in enumerate(dist_values):
            mi = mixed_index(di, dv)

            # Case NONE: no facility inside v.
            table[di, 0] = total * D if D < _INF else _INF

            # Case SINGLE: one child holds all j >= 1 facilities.
            # Precompute sum of A(c, mixed, 0) over children.
            base = sum(tables[c][mi, 0] for c in kids)
            if base < _INF:
                for c in kids:
                    rest = base - tables[c][mi, 0]
                    if rest >= _INF:
                        continue
                    for j in range(1, k + 1):
                        cand = tables[c][di, j] + rest
                        if cand < table[di, j]:
                            table[di, j] = cand

            # Case MULTI: >= 2 children hold facilities; every child sees
            # the mixed distance. Knapsack over (facilities used, number
            # of facility-children capped at 2).
            # state[f][c2] = min cost so far; c2 in {0, 1, 2}.
            state = np.full((k + 1, 3), _INF)
            state[0, 0] = 0.0
            for c in kids:
                nxt = np.full((k + 1, 3), _INF)
                child = tables[c][mi]
                for f in range(k + 1):
                    for c2 in range(3):
                        cur = state[f, c2]
                        if cur >= _INF:
                            continue
                        # child takes jc facilities.
                        max_jc = k - f
                        # jc = 0:
                        cand = cur + child[0]
                        if cand < nxt[f, c2]:
                            nxt[f, c2] = cand
                        for jc in range(1, max_jc + 1):
                            nc2 = min(2, c2 + 1)
                            cand = cur + child[jc]
                            if cand < nxt[f + jc, nc2]:
                                nxt[f + jc, nc2] = cand
                state = nxt
            for j in range(2, k + 1):
                if state[j, 2] < table[di, j]:
                    table[di, j] = state[j, 2]
        tables[v] = table

    inf_idx = nd - 1
    best = float(np.min(tables[0][inf_idx, : k + 1]))
    return KMedianResult(cost=best, k=k)


def k_median_cost(tree: HSTree, facilities: Sequence[int]) -> float:
    """Connection cost of a given facility set under the tree metric."""
    facilities = list(facilities)
    require(len(facilities) >= 1, "need at least one facility")
    dists = np.stack(
        [tree_distances_from_point(tree, f) for f in facilities]
    )
    return float(dists.min(axis=0).sum())


def brute_force_k_median(tree: HSTree, k: int) -> float:
    """Exact optimum by enumerating all facility subsets of size <= k.

    Exponential — test/reference use only.
    """
    import itertools

    best = _INF
    for size in range(1, k + 1):
        for subset in itertools.combinations(range(tree.n), size):
            best = min(best, k_median_cost(tree, subset))
    return best
