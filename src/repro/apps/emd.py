"""Earth-Mover distance via tree embedding (Corollary 1(3)).

EMD here is geometric transportation with unit demands: given equal-size
point sets A (sources) and B (sinks), the minimum total Euclidean length
of a perfect matching between them.

* **Exact baseline** — the Hungarian algorithm
  (:func:`scipy.optimize.linear_sum_assignment`) on the full cost
  matrix; cubic, so benchmarks keep n <= a few hundred.
* **Tree algorithm** — embed ``A ∪ B`` into one HST; on a tree, optimal
  transport has a closed form: every edge carries exactly the imbalance
  of its subtree, so

      EMD_T(A, B) = Σ_edges  weight(e) · |#A below e − #B below e|.

  Domination gives ``EMD_T >= EMD`` surely, and the expected distortion
  carries over (the transport objective is a nonnegative combination of
  pairwise distances), yielding the ``O(log^1.5 n)`` approximation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment
from scipy.spatial.distance import cdist

from repro.tree.hst import HSTree
from repro.util.rng import SeedLike
from repro.util.validation import check_points, check_same_shape, require


def exact_emd(a: np.ndarray, b: np.ndarray) -> float:
    """Exact unit-demand EMD via the Hungarian algorithm (O(n^3))."""
    a = check_points(a)
    b = check_points(b)
    check_same_shape(a, b, ("a", "b"))
    cost = cdist(a, b)
    rows, cols = linear_sum_assignment(cost)
    return float(cost[rows, cols].sum())


def tree_emd_from_tree(tree: HSTree, num_sources: int) -> float:
    """Tree-metric EMD given an HST over the concatenation [A; B].

    ``num_sources`` = |A|; points ``0..num_sources-1`` are sources, the
    rest sinks.  Uses the per-level label rows directly: the edge above a
    level-``lvl`` cluster carries ``level_weights[lvl-1] * |imbalance|``.
    """
    n = tree.n
    require(0 < num_sources < n, "need at least one source and one sink")
    sign = np.ones(n, dtype=np.int64)
    sign[num_sources:] = -1

    total = 0.0
    for lvl in range(1, tree.num_levels + 1):
        row = tree.label_matrix[lvl]
        imbalance = np.bincount(row, weights=sign)
        total += float(tree.level_weights[lvl - 1] * np.abs(imbalance).sum())
    return total


def tree_emd(
    a: np.ndarray,
    b: np.ndarray,
    *,
    tree: Optional[HSTree] = None,
    r: Optional[int] = None,
    method: str = "hybrid",
    seed: SeedLike = None,
    **embed_kwargs,
) -> Tuple[float, HSTree]:
    """Corollary 1(3): EMD estimate from a (fresh or given) embedding.

    Returns ``(estimate, tree)``; the tree is reusable for repeated
    queries against the same point sets.
    """
    a = check_points(a)
    b = check_points(b)
    check_same_shape(a, b, ("a", "b"))
    combined = np.vstack([a, b])
    if tree is None:
        from repro.core.sequential import sequential_tree_embedding

        tree = sequential_tree_embedding(
            combined, r, method=method, seed=seed, **embed_kwargs
        )
    require(tree.n == combined.shape[0], "tree does not match the input sets")
    return tree_emd_from_tree(tree, a.shape[0]), tree


def tree_emd_weighted(
    tree: HSTree, demands: np.ndarray
) -> float:
    """Tree-metric optimal transport with arbitrary demands.

    ``demands[i]`` is point i's signed mass (positive = supply,
    negative = demand); masses must balance (sum ≈ 0).  On a tree the
    optimal transport ships, across each edge, exactly the net imbalance
    of the subtree below it:

        EMD_T = Σ_levels  weight(level) · Σ_clusters |net mass|

    The unit-demand :func:`tree_emd_from_tree` is the special case of
    ±1 demands.
    """
    demands = np.asarray(demands, dtype=np.float64)
    require(demands.shape == (tree.n,), "need one demand per embedded point")
    require(
        abs(float(demands.sum())) <= 1e-6 * max(1.0, np.abs(demands).sum()),
        "demands must balance (sum to zero)",
    )
    total = 0.0
    for lvl in range(1, tree.num_levels + 1):
        row = tree.label_matrix[lvl]
        imbalance = np.bincount(row, weights=demands)
        total += float(tree.level_weights[lvl - 1] * np.abs(imbalance).sum())
    return total


def exact_emd_weighted(
    points_a: np.ndarray,
    mass_a: np.ndarray,
    points_b: np.ndarray,
    mass_b: np.ndarray,
) -> float:
    """Exact weighted EMD via min-cost flow (LP through scipy).

    Supplies ``mass_a`` at ``points_a`` must be transported to demands
    ``mass_b`` at ``points_b``; total masses must match.  Solved as the
    transportation LP with ``linprog`` (dense; keep n*m modest).
    """
    from scipy.optimize import linprog

    a = check_points(points_a)
    b = check_points(points_b)
    mass_a = np.asarray(mass_a, dtype=np.float64)
    mass_b = np.asarray(mass_b, dtype=np.float64)
    require(mass_a.shape == (a.shape[0],), "one mass per source point")
    require(mass_b.shape == (b.shape[0],), "one mass per sink point")
    require((mass_a >= 0).all() and (mass_b >= 0).all(), "masses must be >= 0")
    require(
        abs(mass_a.sum() - mass_b.sum()) <= 1e-9 * max(1.0, mass_a.sum()),
        "total supply must equal total demand",
    )
    n, m = a.shape[0], b.shape[0]
    cost = cdist(a, b).ravel()

    # Flow variables f[i, j] >= 0; supply rows sum to mass_a, demand
    # columns sum to mass_b (one redundant constraint dropped).
    rows = []
    rhs = []
    for i in range(n):
        row = np.zeros(n * m)
        row[i * m : (i + 1) * m] = 1.0
        rows.append(row)
        rhs.append(mass_a[i])
    for j in range(m - 1):
        row = np.zeros(n * m)
        row[j::m] = 1.0
        rows.append(row)
        rhs.append(mass_b[j])
    result = linprog(
        cost,
        A_eq=np.asarray(rows),
        b_eq=np.asarray(rhs),
        bounds=(0, None),
        method="highs",
    )
    require(result.success, f"transportation LP failed: {result.message}")
    return float(result.fun)


def matching_lower_bound(a: np.ndarray, b: np.ndarray) -> float:
    """Cheap lower bound on EMD: each source to its nearest sink.

    Useful sanity envelope in tests: nearest-sink sum <= EMD <= tree EMD.
    """
    cost = cdist(check_points(a), check_points(b))
    return float(cost.min(axis=1).sum())
