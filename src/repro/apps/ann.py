"""Approximate nearest neighbors from tree-embedding ensembles.

A classic consumption pattern for probabilistic tree embeddings (and the
application area the FJLT was born in — Ailon–Chazelle's title is
"Approximate nearest neighbors and the fast Johnson–Lindenstrauss
transform"): each tree's hierarchy proposes, for a query point, the
points sharing its deepest clusters; the union over an ensemble of
independent trees is a small candidate set that contains a near-optimal
neighbor with high probability; exact Euclidean evaluation of the
candidates then picks the winner.

:class:`TreeANN` packages that: build once over the data, query by
point index (or leave-one-out style for all points).  Reported quality
is (found distance / true NN distance); the candidate-set size is the
knob trading accuracy for query work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.ensemble import TreeEnsemble, build_ensemble
from repro.tree.hst import HSTree
from repro.util.rng import SeedLike
from repro.util.validation import check_points, check_positive, require


def _candidates_from_tree(tree: HSTree, i: int, budget: int) -> List[int]:
    """Up to ``budget`` companions of point i, deepest clusters first."""
    labels = tree.label_matrix
    out: List[int] = []
    seen: Set[int] = {i}
    for lvl in range(tree.num_levels, 0, -1):
        row = labels[lvl]
        mates = np.flatnonzero(row == row[i])
        for m in mates:
            m = int(m)
            if m not in seen:
                seen.add(m)
                out.append(m)
                if len(out) >= budget:
                    return out
    return out


@dataclass
class TreeANN:
    """Approximate nearest-neighbor index over a point set."""

    ensemble: TreeEnsemble
    points: np.ndarray
    candidates_per_tree: int = 8

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        *,
        num_trees: int = 4,
        r: Optional[int] = None,
        candidates_per_tree: int = 8,
        seed: SeedLike = None,
        **embed_kwargs,
    ) -> "TreeANN":
        """Embed ``points`` with ``num_trees`` independent trees."""
        pts = check_points(points, min_points=2)
        check_positive("candidates_per_tree", candidates_per_tree)
        ensemble = build_ensemble(
            pts, num_trees, r=r, seed=seed, **embed_kwargs
        )
        return cls(ensemble, pts, candidates_per_tree)

    @property
    def n(self) -> int:
        return self.ensemble.n

    def candidates(self, i: int) -> np.ndarray:
        """The union of per-tree companion sets for point ``i``."""
        require(0 <= i < self.n, f"point index out of range: {i}")
        merged: Set[int] = set()
        for tree in self.ensemble.trees:
            merged.update(
                _candidates_from_tree(tree, i, self.candidates_per_tree)
            )
        merged.discard(i)
        return np.asarray(sorted(merged), dtype=np.int64)

    def query(self, i: int) -> Tuple[int, float]:
        """Approximate nearest neighbor of point ``i``.

        Returns ``(index, euclidean_distance)``.  Falls back to the
        tree-metric nearest when no candidates surface (tiny inputs).
        """
        cand = self.candidates(i)
        if cand.size == 0:
            j, _ = self.ensemble.nearest(i)
            cand = np.asarray([j], dtype=np.int64)
        diffs = self.points[cand] - self.points[i]
        dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        best = int(np.argmin(dists))
        return int(cand[best]), float(dists[best])

    def quality(self, *, queries: Optional[np.ndarray] = None) -> float:
        """Mean (found / true) NN distance ratio over query indices.

        1.0 means every query found its exact nearest neighbor.
        Quadratic in ``len(queries) * n`` — evaluation helper, not a
        production path.
        """
        idx = np.arange(self.n) if queries is None else np.asarray(queries)
        ratios = []
        for i in idx:
            i = int(i)
            diffs = self.points - self.points[i]
            true = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
            true[i] = np.inf
            true_nn = float(true.min())
            _, found = self.query(i)
            ratios.append(found / true_nn if true_nn > 0 else 1.0)
        return float(np.mean(ratios))
