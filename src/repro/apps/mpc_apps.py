"""Corollary 1 as actual O(1)-round MPC algorithms.

The sequential functions in :mod:`repro.apps.mst` / ``emd`` /
``densest_ball`` post-process the tree in one process.  Corollary 1,
however, claims O(1)-round *MPC* algorithms.  This module supplies them:
each consumes a tree embedding in its distributed representation — every
machine holds, for its shard of points, the points' label paths (the
per-level cluster ids, i.e. exactly what Algorithm 2's machines output)
— and finishes the computation with constant-round shuffles and
reductions on the enforcing simulator:

* :func:`mpc_tree_mst` — cluster representatives via a hash shuffle +
  per-key min, then child-rep -> parent-rep edges.  The edge set equals
  the sequential :func:`repro.apps.mst.tree_mst` (the parent's
  representative is the min of its children's, so anchor edges
  coincide), which the tests assert.
* :func:`mpc_tree_emd` — per-(level, cluster) signed counts via one
  shuffle, then ``Σ weight · |imbalance|`` via a tree reduction.
* :func:`mpc_densest_ball` — per-cluster counts at the query level via
  one shuffle, then an argmax reduction.

All three run in a constant number of rounds independent of n; the
returned :class:`repro.mpc.accounting.CostReport` proves it.  Every
round step is a module-level callable with its parameters bound through
:func:`functools.partial`, so the algorithms run unchanged under the
serial, thread, and process round executors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mpc.accounting import CostReport, fully_scalable_local_memory, machines_for
from repro.mpc.cluster import Cluster, RoundContext
from repro.mpc.config import SimulationConfig, fold_legacy_kwargs, resolve_config
from repro.mpc.executor import ExecutorLike
from repro.mpc.machine import Machine
from repro.mpc.metrics import MetricsLog
from repro.tree.hst import HSTree
from repro.util.validation import check_points, check_positive, require


def _embedding_cluster(
    tree: HSTree,
    *,
    eps: float = 0.6,
    points: Optional[np.ndarray] = None,
    executor: ExecutorLike = None,
    config: Optional[SimulationConfig] = None,
) -> Cluster:
    """Stand up a cluster holding the distributed tree representation.

    Machine i receives the label-path columns (and optionally the
    coordinates) of its shard of points — the state Algorithm 2's
    machines end with, re-created here so the application algorithms can
    be used standalone.  ``config`` carries the full simulator knob set
    (executor, faults, budget, metrics, ...); the legacy ``eps`` /
    ``executor`` kwargs fold in through :func:`resolve_config` exactly
    like the other ``mpc_*`` entry points.
    """
    cfg = resolve_config(config, eps=eps, executor=executor)
    n = tree.n
    levels = tree.num_levels
    d = points.shape[1] if points is not None else 1
    per_point = levels + d + 4
    base_local = fully_scalable_local_memory(
        n, max(d, levels), cfg.eps, slack=cfg.memory_slack
    )
    machines = machines_for(n * per_point, base_local)
    shard_rows = -(-n // machines)
    local = max(base_local, int(3.0 * shard_rows * per_point) + 4096)
    cluster = Cluster.from_config(machines, local, cfg)

    from repro.mpc.primitives import shard_bounds

    for mid, (lo, hi) in enumerate(shard_bounds(n, machines)):
        cluster.load(mid, "paths", tree.label_matrix[1:, lo:hi].T.copy())
        cluster.load(mid, "offset", lo)
        if points is not None:
            cluster.load(mid, "coords", np.asarray(points)[lo:hi].copy())
    return cluster


def _hash_dest(keys: np.ndarray, num_machines: int) -> np.ndarray:
    """Deterministic machine assignment for shuffle keys."""
    return (keys * np.int64(2654435761) % np.int64(2**31)) % num_machines


@dataclass
class MPCMSTResult:
    edges: np.ndarray
    cost: float
    report: CostReport
    metrics: Optional[MetricsLog] = None


def _mst_local_mins_step(
    machine: Machine, ctx: RoundContext, *, levels: int
) -> None:
    """Round 1: local min-index per (level, cluster), shuffled by key."""
    paths = machine.get("paths")
    if paths is None or paths.shape[0] == 0:
        return
    offset = machine.get("offset")
    ids = np.arange(paths.shape[0], dtype=np.int64) + offset
    for lvl in range(levels):
        col = paths[:, lvl]
        order = np.argsort(col, kind="stable")
        col_sorted, ids_sorted = col[order], ids[order]
        first = np.r_[0, np.flatnonzero(np.diff(col_sorted)) + 1]
        clusters = col_sorted[first]
        mins = np.minimum.reduceat(ids_sorted, first)
        dests = _hash_dest(clusters, ctx.num_machines)
        for dest in np.unique(dests):
            mask = dests == dest
            ctx.send(
                int(dest),
                (lvl, clusters[mask], mins[mask]),
                tag="mst/min",
            )


def _mst_reduce_mins_step(machine: Machine, ctx: RoundContext) -> None:
    """Round 2: reduce to global representative per (level, cluster)."""
    acc: Dict[Tuple[int, int], int] = {}
    for msg in machine.take_inbox(tag="mst/min"):
        lvl, clusters, mins = msg.payload
        for c, lo in zip(clusters.tolist(), mins.tolist()):
            key = (lvl, c)
            if key not in acc or lo < acc[key]:
                acc[key] = lo
    machine.put("mst/reps", acc)


def _mst_request_reps_step(
    machine: Machine, ctx: RoundContext, *, levels: int
) -> None:
    """Round 3: request the representatives this machine's points need."""
    paths = machine.get("paths")
    if paths is None or paths.shape[0] == 0:
        return
    wanted: Dict[int, set] = {}
    for lvl in range(levels):
        clusters = np.unique(paths[:, lvl])
        dests = _hash_dest(clusters, ctx.num_machines)
        for c, dest in zip(clusters.tolist(), dests.tolist()):
            wanted.setdefault(dest, set()).add((lvl, c))
    for dest, keys in wanted.items():
        ctx.send(dest, sorted(keys), tag="mst/req")


def _mst_answer_reps_step(machine: Machine, ctx: RoundContext) -> None:
    """Round 4: answer representative requests from the local table."""
    reps = machine.get("mst/reps", {})
    for msg in machine.take_inbox(tag="mst/req"):
        answer = {key: reps[key] for key in msg.payload if key in reps}
        ctx.send(msg.src, answer, tag="mst/rep")


def _mst_emit_edges_step(
    machine: Machine, ctx: RoundContext, *, levels: int
) -> None:
    """Round 5: emit edges child-rep -> parent-rep (dedup per cluster —
    only the machine owning the child's representative point emits)."""
    paths = machine.get("paths")
    reps: Dict[Tuple[int, int], int] = {}
    for msg in machine.take_inbox(tag="mst/rep"):
        reps.update(msg.payload)
    if paths is None or paths.shape[0] == 0:
        machine.put("mst/edges", np.empty((0, 2), dtype=np.int64))
        return
    offset = machine.get("offset")
    lo_id, hi_id = offset, offset + paths.shape[0]
    edges: List[Tuple[int, int]] = []
    for lvl in range(levels):
        clusters = np.unique(paths[:, lvl])
        for c in clusters.tolist():
            child_rep = reps[(lvl, c)]
            if not (lo_id <= child_rep < hi_id):
                continue  # another machine owns this cluster's rep
            if lvl == 0:
                # Parent is the root cluster containing everything;
                # its representative is the global minimum index, 0.
                parent_rep = 0
            else:
                row = np.flatnonzero(paths[:, lvl] == c)[0]
                parent = int(paths[row, lvl - 1])
                parent_rep = reps[(lvl - 1, parent)]
            if parent_rep != child_rep:
                edges.append((parent_rep, child_rep))
    machine.put("mst/edges", np.asarray(edges, dtype=np.int64).reshape(-1, 2))


def mpc_tree_mst(
    tree: HSTree,
    points: np.ndarray,
    *,
    eps: float = 0.6,
    executor: ExecutorLike = None,
    config: Optional[SimulationConfig] = None,
) -> MPCMSTResult:
    """Corollary 1(2): extract the spanning tree in O(1) MPC rounds."""
    cfg = fold_legacy_kwargs("mpc_tree_mst", config, eps=eps, executor=executor)
    pts = check_points(points)
    require(pts.shape[0] == tree.n, "points/tree size mismatch")
    cluster = _embedding_cluster(tree, points=pts, config=cfg)
    levels = tree.num_levels

    cluster.round(
        partial(_mst_local_mins_step, levels=levels), label="mst-local-mins"
    )
    cluster.round(_mst_reduce_mins_step, label="mst-reduce-mins")
    cluster.round(
        partial(_mst_request_reps_step, levels=levels), label="mst-request"
    )
    cluster.round(_mst_answer_reps_step, label="mst-answer")
    cluster.round(
        partial(_mst_emit_edges_step, levels=levels), label="mst-edges"
    )

    shards = [machine.get("mst/edges") for machine in cluster]
    edges = np.concatenate([s for s in shards if s is not None], axis=0)
    diffs = pts[edges[:, 0]] - pts[edges[:, 1]]
    cost = float(np.sqrt(np.einsum("ij,ij->i", diffs, diffs)).sum())
    return MPCMSTResult(
        edges=edges, cost=cost, report=cluster.report(), metrics=cluster.metrics
    )


@dataclass
class MPCEMDResult:
    estimate: float
    report: CostReport
    metrics: Optional[MetricsLog] = None


def _emd_local_counts_step(
    machine: Machine,
    ctx: RoundContext,
    *,
    levels: int,
    num_sources: int,
    demands: Optional[np.ndarray],
) -> None:
    """Round 1: local signed counts per (level, cluster), shuffled."""
    paths = machine.get("paths")
    if paths is None or paths.shape[0] == 0:
        return
    offset = machine.get("offset")
    ids = np.arange(paths.shape[0], dtype=np.int64) + offset
    if demands is None:
        signs = np.where(ids < num_sources, 1.0, -1.0)
    else:
        signs = demands[ids]
    for lvl in range(levels):
        col = paths[:, lvl]
        order = np.argsort(col, kind="stable")
        col_sorted, signs_sorted = col[order], signs[order]
        first = np.r_[0, np.flatnonzero(np.diff(col_sorted)) + 1]
        clusters = col_sorted[first]
        sums = np.add.reduceat(signs_sorted, first)
        dests = _hash_dest(clusters, ctx.num_machines)
        for dest in np.unique(dests):
            mask = dests == dest
            ctx.send(int(dest), (lvl, clusters[mask], sums[mask]), tag="emd/cnt")


def _emd_reduce_counts_step(
    machine: Machine, ctx: RoundContext, *, weights: np.ndarray
) -> None:
    """Round 2: reduce imbalances and weigh them locally."""
    acc: Dict[Tuple[int, int], int] = {}
    for msg in machine.take_inbox(tag="emd/cnt"):
        lvl, clusters, sums = msg.payload
        for c, s in zip(clusters.tolist(), sums.tolist()):
            acc[(lvl, c)] = acc.get((lvl, c), 0) + s
    partial_sum = sum(
        float(weights[lvl]) * abs(s) for (lvl, _c), s in acc.items()
    )
    machine.put("emd/partial", partial_sum)


def mpc_tree_emd(
    tree: HSTree,
    num_sources: int,
    *,
    demands: Optional[np.ndarray] = None,
    eps: float = 0.6,
    executor: ExecutorLike = None,
    config: Optional[SimulationConfig] = None,
) -> MPCEMDResult:
    """Corollary 1(3): tree-metric EMD in O(1) MPC rounds.

    ``tree`` embeds the concatenation [sources; sinks]; points with
    global index < ``num_sources`` carry +1 demand, the rest -1 — unless
    an explicit balanced ``demands`` vector is supplied (the weighted
    transportation generalization, matching
    :func:`repro.apps.emd.tree_emd_weighted`).
    """
    if demands is None:
        require(
            0 < num_sources < tree.n, "need at least one source and one sink"
        )
    else:
        demands = np.asarray(demands, dtype=np.float64)
        require(demands.shape == (tree.n,), "one demand per embedded point")
        require(
            abs(float(demands.sum()))
            <= 1e-6 * max(1.0, float(np.abs(demands).sum())),
            "demands must balance (sum to zero)",
        )
    cfg = fold_legacy_kwargs("mpc_tree_emd", config, eps=eps, executor=executor)
    cluster = _embedding_cluster(tree, config=cfg)
    levels = tree.num_levels
    weights = tree.level_weights

    cluster.round(
        partial(
            _emd_local_counts_step,
            levels=levels,
            num_sources=num_sources,
            demands=demands,
        ),
        label="emd-local-counts",
    )
    cluster.round(
        partial(_emd_reduce_counts_step, weights=weights), label="emd-reduce"
    )

    # Rounds 3+: tree-reduce the partial sums.
    from repro.mpc.aggregate import reduce_scalar

    reduce_scalar(cluster, "emd/partial", np.sum, out_key="emd/total", fanin=8)
    total = float(cluster.machine(0).get("emd/total"))
    return MPCEMDResult(
        estimate=total, report=cluster.report(), metrics=cluster.metrics
    )


@dataclass
class MPCDensestBallResult:
    count: int
    cluster_key: int
    level: int
    report: CostReport
    metrics: Optional[MetricsLog] = None


def _ball_local_counts_step(
    machine: Machine, ctx: RoundContext, *, level: int
) -> None:
    """Round 1: per-cluster counts at the query level, shuffled."""
    paths = machine.get("paths")
    if paths is None or paths.shape[0] == 0:
        return
    col = paths[:, level - 1]
    clusters, counts = np.unique(col, return_counts=True)
    dests = _hash_dest(clusters, ctx.num_machines)
    for dest in np.unique(dests):
        mask = dests == dest
        ctx.send(int(dest), (clusters[mask], counts[mask]), tag="ball/cnt")


def _ball_reduce_counts_step(machine: Machine, ctx: RoundContext) -> None:
    """Round 2: merge counts and keep the local (count, key) champion."""
    acc: Dict[int, int] = {}
    for msg in machine.take_inbox(tag="ball/cnt"):
        clusters, counts = msg.payload
        for c, k in zip(clusters.tolist(), counts.tolist()):
            acc[c] = acc.get(c, 0) + int(k)
    if acc:
        best = max(acc, key=acc.get)
        machine.put("ball/best", (acc[best], best))


def _max_pair(parts: List[Tuple[int, int]]) -> Tuple[int, int]:
    """Combine for the densest-ball argmax reduction (max by count)."""
    return max(parts)


def mpc_densest_ball(
    tree: HSTree,
    target_diameter: float,
    *,
    r: int = 1,
    scale_factor: float = 2.0,
    eps: float = 0.6,
    executor: ExecutorLike = None,
    config: Optional[SimulationConfig] = None,
) -> MPCDensestBallResult:
    """Corollary 1(1): bicriteria densest ball in O(1) MPC rounds."""
    cfg = fold_legacy_kwargs("mpc_densest_ball", config, eps=eps, executor=executor)
    check_positive("target_diameter", target_diameter)
    check_positive("scale_factor", scale_factor)
    scales = tree.level_weights / (2.0 * math.sqrt(r))
    eligible = np.flatnonzero(scales >= scale_factor * target_diameter)
    level = int(eligible.max()) + 1 if eligible.size else 0
    if level == 0:
        report = CostReport(num_machines=1, local_memory=1)
        return MPCDensestBallResult(
            count=tree.n, cluster_key=0, level=0, report=report
        )

    cluster = _embedding_cluster(tree, config=cfg)

    cluster.round(
        partial(_ball_local_counts_step, level=level), label="ball-local-counts"
    )
    cluster.round(_ball_reduce_counts_step, label="ball-reduce")

    from repro.mpc.primitives import tree_gather

    tree_gather(
        cluster,
        "ball/best",
        _max_pair,
        out_key="ball/winner",
        fanin=8,
    )
    count, key = cluster.machine(0).get("ball/winner")
    return MPCDensestBallResult(
        count=int(count),
        cluster_key=int(key),
        level=level,
        report=cluster.report(),
        metrics=cluster.metrics,
    )
