"""Applications of the tree embedding (Corollary 1).

Each module pairs the tree-based O(1)-round algorithm with an exact (or
near-exact) sequential baseline so approximation ratios can be measured:

* :mod:`~repro.apps.mst` — Euclidean minimum spanning tree;
* :mod:`~repro.apps.emd` — Earth-Mover distance (geometric
  transportation with unit demands);
* :mod:`~repro.apps.densest_ball` — the bicriteria densest-ball problem
  the paper introduces to MPC.
"""

from repro.apps.ann import TreeANN
from repro.apps.clustering import (
    clustering_agreement,
    level_clustering,
    tree_single_linkage,
)
from repro.apps.densest_ball import (
    DensestBallResult,
    exact_densest_ball,
    tree_densest_ball,
)
from repro.apps.emd import (
    exact_emd,
    exact_emd_weighted,
    tree_emd,
    tree_emd_weighted,
)
from repro.apps.kmedian import k_median_cost, tree_k_median_cost
from repro.apps.mpc_apps import mpc_densest_ball, mpc_tree_emd, mpc_tree_mst
from repro.apps.mst import exact_emst, tree_mst
from repro.apps.tree_dp import (
    fold_tree,
    gonzalez_k_center,
    tree_facility_location,
    tree_k_center,
)

__all__ = [
    "TreeANN",
    "exact_emst",
    "tree_mst",
    "mpc_tree_mst",
    "exact_emd",
    "exact_emd_weighted",
    "tree_emd",
    "tree_emd_weighted",
    "mpc_tree_emd",
    "exact_densest_ball",
    "tree_densest_ball",
    "mpc_densest_ball",
    "DensestBallResult",
    "fold_tree",
    "tree_k_center",
    "gonzalez_k_center",
    "tree_facility_location",
    "tree_k_median_cost",
    "k_median_cost",
    "tree_single_linkage",
    "level_clustering",
    "clustering_agreement",
]
