"""Dynamic programming on tree embeddings (the paper's Section 1.3.3).

The paper points out that an HST embedding turns hard metric problems
into tree problems: any problem solvable within factor ``f(α)`` on an
α-distortion tree embedding inherits an ``f(O(log^1.5 n))``
approximation on the original Euclidean data.  This module supplies the
tree-side machinery:

* :func:`fold_tree` — generic bottom-up evaluation over an HSTree;
* :func:`tree_k_center` — **exact** k-center on the tree metric.  On an
  HST every cluster at level ℓ has tree-radius ``suffix(ℓ)`` around any
  of its leaves, so the optimal k-center solution is "the deepest level
  with at most k clusters" — a one-scan algorithm;
* :func:`tree_facility_location` — **exact** uncapacitated facility
  location on the tree metric via the classic tree DP, exploiting the
  HST property that the distance from any leaf of a cluster to anything
  joining at ancestor level ``a`` depends only on ``a``.

Euclidean baselines (:func:`gonzalez_k_center`, brute force in the
tests) quantify the inherited approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry.metrics import squared_distances_to
from repro.tree.hst import HSTree
from repro.util.validation import check_points, check_positive, require


def fold_tree(
    tree: HSTree,
    leaf_value: Callable[[int, int], object],
    combine: Callable[[int, List[object]], object],
) -> object:
    """Bottom-up fold over the HST's explicit nodes.

    ``leaf_value(point_index, node_id)`` produces each leaf's value;
    ``combine(node_id, child_values)`` merges children into their
    parent.  Returns the root's value.
    """
    nodes = tree.nodes
    children = nodes.children()
    values: Dict[int, object] = {}
    # Leaves first (deepest level), then upward.
    order = np.argsort(-nodes.level, kind="stable")
    for v in order:
        v = int(v)
        kids = children.get(v, [])
        if not kids:
            members = nodes.members[v]
            require(
                members.size >= 1, "leaf node without members — corrupt tree"
            )
            values[v] = leaf_value(int(members[0]), v)
        else:
            values[v] = combine(v, [values[c] for c in kids])
    return values[0]


@dataclass(frozen=True)
class KCenterResult:
    radius: float
    centers: np.ndarray
    level: int
    assignment: np.ndarray


def tree_k_center(tree: HSTree, k: int) -> KCenterResult:
    """Exact k-center under the tree metric.

    Returns the minimum tree-radius R and k (or fewer) center points so
    every point is within R of a center.  On an HST this is the deepest
    level with at most k clusters: centers are cluster representatives,
    and the radius is ``suffix_weights[level]`` (a point and its rep
    separate no earlier than level+1).
    """
    check_positive("k", k)
    counts = tree.clusters_per_level()
    eligible = np.flatnonzero(counts <= k)
    level = int(eligible.max())  # counts[0] == 1 <= k, so always nonempty
    row = tree.label_matrix[level]
    suffix = tree.suffix_weights
    radius = float(2.0 * suffix[level]) if level < tree.num_levels else 0.0

    order = np.argsort(row, kind="stable")
    boundaries = np.r_[0, np.flatnonzero(np.diff(row[order])) + 1]
    centers = np.sort(order[boundaries])
    # Assignment: cluster label -> index into the (sorted) center list.
    relabel = {int(row[c]): i for i, c in enumerate(centers)}
    assignment = np.fromiter(
        (relabel[int(label)] for label in row), dtype=np.int64, count=tree.n
    )
    return KCenterResult(
        radius=radius, centers=centers, level=level, assignment=assignment
    )


def gonzalez_k_center(points: np.ndarray, k: int, *, first: int = 0) -> Tuple[
    np.ndarray, float
]:
    """Gonzalez's greedy 2-approximation for Euclidean k-center.

    Returns (center indices, covering radius).  The exact optimum is
    NP-hard; greedy is the standard baseline.
    """
    pts = check_points(points)
    check_positive("k", k)
    n = pts.shape[0]
    centers = [first]
    dist2 = squared_distances_to(pts, pts[first])
    while len(centers) < min(k, n):
        nxt = int(np.argmax(dist2))
        centers.append(nxt)
        dist2 = np.minimum(dist2, squared_distances_to(pts, pts[nxt]))
    return np.asarray(centers, dtype=np.int64), float(np.sqrt(dist2.max()))


@dataclass(frozen=True)
class FacilityLocationResult:
    cost: float
    facilities: np.ndarray


def tree_facility_location(tree: HSTree, facility_cost: float) -> FacilityLocationResult:
    """Exact uncapacitated facility location under the tree metric.

    Opening a facility at a point costs ``facility_cost``; each point
    connects to its nearest open facility at its tree distance.  Exact
    DP over the HST:

    For a node ``v`` at level ``ℓ`` the distance from any leaf of ``v``
    to a facility joining the path at ancestor level ``a < ℓ`` is
    ``2 * suffix(a)`` — independent of the leaf.  So the DP state is the
    distance ``D`` of the nearest facility *outside* the subtree, drawn
    from the O(L) possible values, with:

    * ``A(v, D)`` — min cost of subtree v (opening + connections);
    * ``B(v, D)`` — same, forced to open >= 1 facility inside v.

    Combination at an internal node uses the cross distance
    ``Dv = 2 * suffix(ℓ)`` between leaves of different children: with
    one committed child it alone sees ``D``, the others ``min(D, Dv)``;
    with >= 2 committed everyone sees ``min(D, Dv)``.
    """
    check_positive("facility_cost", facility_cost)
    nodes = tree.nodes
    children = nodes.children()
    suffix = tree.suffix_weights
    INF = float("inf")

    # Candidate external distances: 2*suffix[a] for a = 0..L, plus INF.
    dist_values = [2.0 * float(s) for s in suffix] + [INF]

    # Memo tables: values[v] maps D-index -> (A, B, choice metadata).
    A: Dict[int, List[float]] = {}
    B: Dict[int, List[float]] = {}
    # For reconstruction: per (v, D-index), the decision taken.
    decisionA: Dict[int, List[object]] = {}
    decisionB: Dict[int, List[object]] = {}

    order = [int(v) for v in np.argsort(-nodes.level, kind="stable")]
    for v in order:
        kids = children.get(v, [])
        nd = len(dist_values)
        if not kids:
            count = int(nodes.members[v].size)
            a_row, b_row, da_row, db_row = [], [], [], []
            for D in dist_values:
                open_cost = facility_cost  # facility at this leaf, dist 0
                connect = count * D if D < INF else INF
                if open_cost <= connect:
                    a_row.append(open_cost)
                    da_row.append("open")
                else:
                    a_row.append(connect)
                    da_row.append("connect")
                b_row.append(open_cost)
                db_row.append("open")
            A[v], B[v] = a_row, b_row
            decisionA[v], decisionB[v] = da_row, db_row
            continue

        lvl = int(nodes.level[v])
        Dv = 2.0 * float(suffix[lvl])
        a_row, b_row, da_row, db_row = [], [], [], []
        for di, D in enumerate(dist_values):
            Dmix = min(D, Dv)
            mix_idx = _dist_index(dist_values, Dmix)
            # No facility anywhere in v: every leaf pays D.
            total_leaves = int(nodes.members[v].size)
            none_cost = total_leaves * D if D < INF else INF

            # Exactly one committed child i.
            sum_a_mix = sum(A[c][mix_idx] for c in kids)
            best_single, best_single_i = INF, None
            for c in kids:
                cost = B[c][di] + (sum_a_mix - A[c][mix_idx])
                if cost < best_single:
                    best_single, best_single_i = cost, c

            # >= 2 committed children: everyone sees Dmix; commit the two
            # children with the smallest B - A penalty.
            penalties = sorted(
                (B[c][mix_idx] - A[c][mix_idx], c) for c in kids
            )
            if len(kids) >= 2:
                multi = sum_a_mix + penalties[0][0] + penalties[1][0]
                multi_pair = (penalties[0][1], penalties[1][1])
            else:
                multi, multi_pair = INF, None

            with_fac = min(best_single, multi)
            b_row.append(with_fac)
            db_row.append(
                ("single", best_single_i, mix_idx, di)
                if best_single <= multi
                else ("multi", multi_pair, mix_idx)
            )
            if none_cost <= with_fac:
                a_row.append(none_cost)
                da_row.append("none")
            else:
                a_row.append(with_fac)
                da_row.append(db_row[-1])
        A[v], B[v] = a_row, b_row
        decisionA[v], decisionB[v] = da_row, db_row

    inf_idx = len(dist_values) - 1
    total = A[0][inf_idx]

    # Reconstruct the open-facility set.
    facilities: List[int] = []

    def walk(v: int, di: int, table: str) -> None:
        dec = (decisionA if table == "A" else decisionB)[v][di]
        kids = children.get(v, [])
        if dec == "connect" or dec == "none":
            return
        if dec == "open":
            facilities.append(int(nodes.members[v][0]))
            return
        kind = dec[0]
        if kind == "single":
            _, committed, mix_idx, d_idx = dec
            for c in kids:
                if c == committed:
                    walk(c, d_idx, "B")
                else:
                    walk(c, mix_idx, "A")
        else:
            _, pair, mix_idx = dec
            for c in kids:
                if c in pair:
                    walk(c, mix_idx, "B")
                else:
                    walk(c, mix_idx, "A")

    walk(0, inf_idx, "A")
    return FacilityLocationResult(
        cost=float(total), facilities=np.asarray(sorted(facilities), dtype=np.int64)
    )


def _dist_index(dist_values: Sequence[float], value: float) -> int:
    """Index of ``value`` in the candidate distance list.

    Every ``min(D, Dv)`` is itself a candidate: both arguments come from
    the suffix-distance set.
    """
    for i, d in enumerate(dist_values):
        if d == value:
            return i
    raise AssertionError("mixed distance not in candidate set")


def facility_location_cost(
    tree: HSTree, facilities: Sequence[int], facility_cost: float
) -> float:
    """Objective value of a given facility set under the tree metric."""
    facilities = list(facilities)
    require(len(facilities) >= 1, "need at least one facility")
    from repro.tree.metric import tree_distances_from_point

    dists = np.stack([tree_distances_from_point(tree, f) for f in facilities])
    return float(len(facilities) * facility_cost + dists.min(axis=0).sum())
