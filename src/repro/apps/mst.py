"""Minimum spanning tree via tree embedding (Corollary 1(2)).

The tree-based algorithm: build the HST, then for every internal node
link the representatives of its children — a spanning tree of the point
set computable level-locally (one MPC round given the paths).  Its
Euclidean cost is at most the HST's cost, which in expectation is within
the embedding distortion of the true EMST; measured ratios are what the
benchmark reports.

The exact baseline is Prim's algorithm, O(n²) time but fully vectorized
(one numpy pass per added vertex), comfortable to a few thousand points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.tree.hst import HSTree
from repro.util.validation import check_points, require


@dataclass(frozen=True)
class SpanningTree:
    """Edge list (point indices) plus its Euclidean cost."""

    edges: np.ndarray  # (n-1, 2) int64
    cost: float

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])


def exact_emst(points: np.ndarray) -> SpanningTree:
    """Exact Euclidean MST by vectorized Prim.

    Maintains, for every vertex outside the tree, the distance to its
    nearest tree vertex; each of the ``n - 1`` insertions updates that
    array with one broadcasted distance computation.
    """
    pts = check_points(points, min_points=1)
    n = pts.shape[0]
    if n == 1:
        return SpanningTree(np.empty((0, 2), dtype=np.int64), 0.0)

    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_src = np.zeros(n, dtype=np.int64)
    in_tree[0] = True
    diff = pts - pts[0]
    best_dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    best_dist[0] = np.inf
    best_src[:] = 0

    edges = np.empty((n - 1, 2), dtype=np.int64)
    total = 0.0
    for t in range(n - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, best_dist)))
        total += float(best_dist[nxt])
        edges[t] = (best_src[nxt], nxt)
        in_tree[nxt] = True
        diff = pts - pts[nxt]
        cand = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        closer = cand < best_dist
        best_dist[closer] = cand[closer]
        best_src[closer] = nxt
    return SpanningTree(edges, total)


def tree_mst(tree: HSTree, points: np.ndarray) -> SpanningTree:
    """Spanning tree induced by the HST (the Corollary 1(2) algorithm).

    For each internal node, the representative (minimum point index) of
    every non-first child cluster is connected to the representative of
    the first child.  Each point appears as a non-root representative at
    exactly one node, so the result has exactly ``n - 1`` edges and is
    connected (it mirrors the tree's own topology).
    """
    pts = check_points(points, min_points=1)
    require(pts.shape[0] == tree.n, "points/tree size mismatch")
    nodes = tree.nodes
    children = nodes.children()

    reps = np.empty(nodes.count, dtype=np.int64)
    # members[v] are point indices; min is a stable representative.
    for v in range(nodes.count):
        reps[v] = int(nodes.members[v].min()) if nodes.members[v].size else -1

    pairs: List[Tuple[int, int]] = []
    for v, kids in children.items():
        if len(kids) < 2:
            continue
        # Anchor at the child holding the parent's representative (the
        # minimum index) so the edge set matches the distributed
        # construction in repro.apps.mpc_apps exactly.
        kid_reps = [int(reps[c]) for c in kids]
        anchor = min(kid_reps)
        for other in kid_reps:
            if other != anchor:
                pairs.append((anchor, other))

    edges = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if edges.shape[0]:
        diffs = pts[edges[:, 0]] - pts[edges[:, 1]]
        cost = float(np.sqrt(np.einsum("ij,ij->i", diffs, diffs)).sum())
    else:
        cost = 0.0
    return SpanningTree(edges, cost)


def spanning_tree_is_valid(st: SpanningTree, n: int) -> bool:
    """Check the edge list really spans ``n`` points (union-find)."""
    if n <= 1:
        return st.num_edges == 0
    if st.num_edges != n - 1:
        return False
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    merged = 0
    for a, b in st.edges:
        ra, rb = find(int(a)), find(int(b))
        if ra == rb:
            return False
        parent[ra] = rb
        merged += 1
    return merged == n - 1
