"""The one-stop import surface for the library.

Everything a downstream user needs lives here under stable names:

* :func:`embed` — the backend-dispatching entry point
  (sequential / mpc / pipeline);
* :class:`Session` — a reusable bundle of simulator configuration plus
  a base seed, with one method per ``mpc_*`` entry point so sweeps
  never repeat knob plumbing;
* the typed result objects (:class:`~repro.results.EmbeddingResult`,
  :class:`~repro.results.TransformResult`, ...) and
  :class:`~repro.serve.service.EmbeddingService`.

All seven ``mpc_*`` entry points share one signature shape: data
arguments first, algorithm knobs as keywords, and every simulator knob
bundled in ``config=`` (a :class:`~repro.mpc.config.SimulationConfig`).
The legacy per-knob kwargs (``eps=``, ``executor=``, ``faults=``, ...)
still work but emit ``DeprecationWarning`` through one shared fold-in
helper — see docs/API.md, "Deprecation policy for legacy per-knob
kwargs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.apps.mpc_apps import (
    MPCDensestBallResult,
    MPCEMDResult,
    MPCMSTResult,
    mpc_densest_ball,
    mpc_tree_emd,
    mpc_tree_mst,
)
from repro.core.embedding import TreeEmbedding, embed
from repro.core.mpc_embedding import mpc_tree_embedding
from repro.core.pipeline import PipelineResult, theorem1_pipeline
from repro.jl.mpc_dense import mpc_dense_jl
from repro.jl.mpc_fjlt import mpc_blocked_fwht, mpc_fjlt
from repro.mpc.config import SimulationConfig
from repro.results import (
    DynamicUpdateResult,
    EmbeddingResult,
    FWHTResult,
    QueryResult,
    TransformResult,
)
from repro.serve.maintenance import mpc_dynamic_delete, mpc_dynamic_insert
from repro.serve.service import EmbeddingService
from repro.tree.hst import HSTree
from repro.util.rng import SeedLike, as_generator, spawn_many

__all__ = [
    "DynamicUpdateResult",
    "EmbeddingResult",
    "EmbeddingService",
    "FWHTResult",
    "PipelineResult",
    "QueryResult",
    "Session",
    "SimulationConfig",
    "TransformResult",
    "TreeEmbedding",
    "embed",
    "mpc_blocked_fwht",
    "mpc_dense_jl",
    "mpc_densest_ball",
    "mpc_dynamic_delete",
    "mpc_dynamic_insert",
    "mpc_fjlt",
    "mpc_tree_emd",
    "mpc_tree_embedding",
    "mpc_tree_mst",
    "theorem1_pipeline",
]


@dataclass
class Session:
    """A configuration + randomness bundle for repeated entry-point calls.

    Construct once, call many times: every method forwards
    ``config=self.config`` and draws a fresh child seed from the
    session's base seed (so repeated calls differ deterministically, and
    two sessions built with the same seed replay the same sequence)::

        session = Session(config=SimulationConfig(executor="process"),
                          seed=7)
        result = session.tree_embedding(points, r=2)
        service = session.serve(points, r=2)

    Pass ``seed=`` explicitly to any method to override the drawn one.
    """

    config: SimulationConfig = SimulationConfig()
    seed: SeedLike = None

    def __post_init__(self) -> None:
        self._rng = as_generator(self.seed)

    def _next_seed(self, override: SeedLike) -> Any:
        if override is not None:
            return override
        return spawn_many(self._rng, 1)[0]

    def embed(
        self, points: np.ndarray, *, backend: str = "sequential", **kwargs: Any
    ) -> TreeEmbedding:
        return embed(
            points, backend=backend, seed=self._next_seed(kwargs.pop("seed", None)),
            **kwargs,
        )

    def tree_embedding(
        self, points: np.ndarray, r: Optional[int] = None,
        *, seed: SeedLike = None, **kwargs: Any,
    ) -> EmbeddingResult:
        return mpc_tree_embedding(
            points, r, seed=self._next_seed(seed), config=self.config, **kwargs
        )

    def pipeline(
        self, points: np.ndarray, *, seed: SeedLike = None, **kwargs: Any
    ) -> PipelineResult:
        return theorem1_pipeline(
            points, seed=self._next_seed(seed), config=self.config, **kwargs
        )

    def fjlt(
        self, points: np.ndarray, *, seed: SeedLike = None, **kwargs: Any
    ) -> TransformResult:
        return mpc_fjlt(
            points, seed=self._next_seed(seed), config=self.config, **kwargs
        )

    def dense_jl(
        self, points: np.ndarray, k: int, *, seed: SeedLike = None, **kwargs: Any
    ) -> TransformResult:
        return mpc_dense_jl(
            points, k, seed=self._next_seed(seed), config=self.config, **kwargs
        )

    def blocked_fwht(
        self, vectors: np.ndarray, num_machines: int, **kwargs: Any
    ) -> FWHTResult:
        return mpc_blocked_fwht(
            vectors, num_machines, config=self.config, **kwargs
        )

    def mst(
        self, tree: HSTree, points: np.ndarray, **kwargs: Any
    ) -> MPCMSTResult:
        return mpc_tree_mst(tree, points, config=self.config, **kwargs)

    def emd(
        self, tree: HSTree, num_sources: int, **kwargs: Any
    ) -> MPCEMDResult:
        return mpc_tree_emd(tree, num_sources, config=self.config, **kwargs)

    def densest_ball(
        self, tree: HSTree, target_diameter: float, **kwargs: Any
    ) -> MPCDensestBallResult:
        return mpc_densest_ball(
            tree, target_diameter, config=self.config, **kwargs
        )

    def dynamic_insert(
        self, tree: HSTree, points: np.ndarray, **kwargs: Any
    ) -> DynamicUpdateResult:
        return mpc_dynamic_insert(tree, points, config=self.config, **kwargs)

    def dynamic_delete(
        self, tree: HSTree, indices: Any, **kwargs: Any
    ) -> DynamicUpdateResult:
        return mpc_dynamic_delete(tree, indices, config=self.config, **kwargs)

    def serve(
        self,
        points: np.ndarray,
        r: Optional[int] = None,
        *,
        seed: SeedLike = None,
        **kwargs: Any,
    ) -> EmbeddingService:
        """Build an :class:`EmbeddingService` under this session's config."""
        return EmbeddingService(
            points, r, seed=self._next_seed(seed), config=self.config, **kwargs
        )
