"""Legacy setup shim (the environment's setuptools predates PEP 660)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.7.0",
    description=(
        "Massively parallel tree embeddings for high dimensional spaces "
        "(SPAA 2023 reproduction)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
