"""Rules about MPC step functions: MPC001, MPC003, MPC007, MPC009.

A *step function* is what :meth:`Cluster.round` / ``RoundExecutor.run_round``
schedules onto machines.  The executor contract (``repro/mpc/executor.py``)
requires steps to be module-level picklable callables that touch nothing
but the ``Machine`` and ``RoundContext`` they are handed.  These rules
enforce that shape statically:

* MPC001 — steps must be module-level defs (or ``functools.partial`` of
  one), never lambdas or closures.  Today this only fails at pickle time
  under the process executor.
* MPC003 — steps must not write module-level mutable globals (the static
  companion to the runtime ``StorageIsolationViolation`` guard: global
  writes are invisible to accounting and diverge across processes).
* MPC007 — steps must not capture a ``Cluster`` or foreign ``Machine``;
  the only machine in scope is their own argument.
* MPC009 — steps must not catch ``MPCError`` (or anything broader)
  wholesale: the simulator's typed failures — resource violations,
  ``WorkerDied`` from fault injection — are the cluster's recovery and
  enforcement signals, and a step that swallows them silently disables
  both.  Catch the specific subclass a step genuinely handles.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from mpclint.core import (
    ModuleInfo,
    Project,
    Rule,
    Severity,
    Violation,
    dotted,
    function_scopes,
    is_partial_call,
    local_names,
    register,
    round_dispatches,
)

#: Methods that mutate their receiver in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "update",
    "add",
    "discard",
    "setdefault",
    "popitem",
    "sort",
    "reverse",
    "appendleft",
    "extendleft",
}


def _round_step_exprs(module: ModuleInfo) -> List[Tuple[ast.Call, ast.AST]]:
    """``(call, step_expression)`` for every MPC round dispatch in the module.

    Thin wrapper over :func:`mpclint.core.round_dispatches` (shared with
    the round-complexity analyzer) keeping the historical per-module
    signature these rules use.
    """
    assert module.tree is not None
    return round_dispatches(module.tree)


def _def_name_depths(module: ModuleInfo) -> Tuple[Set[str], Set[str], Set[str]]:
    """(module-level def names, nested def names, names bound to lambdas)."""
    assert module.tree is not None
    module_defs: Set[str] = set()
    nested_defs: Set[str] = set()
    for scope in function_scopes(module.tree):
        if scope.name is None:
            continue
        (module_defs if scope.depth == 0 else nested_defs).add(scope.name)
    lambda_named: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lambda_named.add(target.id)
    return module_defs, nested_defs, lambda_named


def _partial_inner(call: ast.Call) -> Optional[ast.AST]:
    return call.args[0] if call.args else None


def _step_function_defs(module: ModuleInfo) -> List[ast.FunctionDef]:
    """Module-level defs that are (or look like) round step functions.

    A def counts as a step when its name is passed to a round dispatch in
    this module (directly or as the first ``partial`` argument) or when
    it follows the tree-wide ``*_step`` naming convention.
    """
    assert module.tree is not None
    step_names: Set[str] = set()
    for _call, expr in _round_step_exprs(module):
        if is_partial_call(expr):
            expr = _partial_inner(expr) or expr
        if isinstance(expr, ast.Name):
            step_names.add(expr.id)
    defs = []
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and (
            node.name in step_names or node.name.endswith("_step")
        ):
            defs.append(node)
    return defs


def _base_name(node: ast.AST) -> Optional[str]:
    """Root ``Name`` of a Subscript/Attribute chain (``X[0].y`` -> ``X``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class StepPicklabilityRule(Rule):
    """MPC001: steps must be module-level defs or partials of one."""

    id = "MPC001"
    severity = Severity.ERROR
    title = "step functions must be module-level picklable callables"
    fix_hint = (
        "lift the step to a module-level def and bind per-call data with "
        "functools.partial(step, key=value); lambdas and closures fail to "
        "pickle under the process executor"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        module_defs, nested_defs, lambda_named = _def_name_depths(module)
        for call, expr in _round_step_exprs(module):
            yield from self._check_step_expr(module, expr, module_defs, nested_defs,
                                             lambda_named, via_partial=False)

    def _check_step_expr(
        self,
        module: ModuleInfo,
        expr: ast.AST,
        module_defs: Set[str],
        nested_defs: Set[str],
        lambda_named: Set[str],
        *,
        via_partial: bool,
    ) -> Iterator[Violation]:
        where = "partial-wrapped step" if via_partial else "step"
        if isinstance(expr, ast.Lambda):
            yield self.violation(
                module, expr, f"{where} is a lambda — not picklable by the process executor"
            )
        elif is_partial_call(expr) and not via_partial:
            inner = _partial_inner(expr)  # type: ignore[arg-type]
            if inner is None:
                yield self.violation(module, expr, "partial(...) step has no target callable")
            else:
                yield from self._check_step_expr(
                    module, inner, module_defs, nested_defs, lambda_named, via_partial=True
                )
        elif isinstance(expr, ast.Name):
            if expr.id in lambda_named:
                yield self.violation(
                    module,
                    expr,
                    f"{where} {expr.id!r} is bound to a lambda — lambdas have no "
                    "qualified name and cannot be pickled",
                )
            elif expr.id in nested_defs and expr.id not in module_defs:
                yield self.violation(
                    module,
                    expr,
                    f"{where} {expr.id!r} is a nested def (closure) — only "
                    "module-level defs survive pickling",
                )
        # Attribute references (module.step) and opaque expressions are
        # accepted: the runtime ExecutorStepError remains the backstop.


@register
class StepGlobalWriteRule(Rule):
    """MPC003: no writes to module-level mutable globals inside steps."""

    id = "MPC003"
    severity = Severity.ERROR
    title = "step functions must not write module-level globals"
    fix_hint = (
        "keep all step state on the Machine (machine.put/get) or bind it "
        "via functools.partial; module-global writes bypass accounting and "
        "diverge between the serial and process executors"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        for func in _step_function_defs(module):
            locals_ = local_names(func)
            globals_ = module.top_level - locals_
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield self.violation(
                        module,
                        node,
                        f"step {func.name!r} declares `global {', '.join(node.names)}` — "
                        "step state must live on the machine",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, (ast.Subscript, ast.Attribute)):
                            base = _base_name(target)
                            if base is not None and base in globals_:
                                yield self.violation(
                                    module,
                                    node,
                                    f"step {func.name!r} mutates module-level "
                                    f"{base!r} via assignment",
                                )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                ):
                    # Module aliases are exempt: np.sort(x) is a function
                    # call, not a container mutation.
                    base = _base_name(node.func.value)
                    if (
                        base is not None
                        and base in globals_
                        and base not in module.module_aliases
                    ):
                        yield self.violation(
                            module,
                            node,
                            f"step {func.name!r} mutates module-level {base!r} "
                            f"via .{node.func.attr}()",
                        )


@register
class StepCaptureRule(Rule):
    """MPC007: steps must not capture a Cluster or foreign Machine."""

    id = "MPC007"
    severity = Severity.ERROR
    title = "steps may only touch their own Machine argument"
    fix_hint = (
        "a step's whole world is (machine, ctx): broadcast shared data as "
        "messages (so it is charged) instead of reaching into the cluster "
        "or other machines"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        cluster_globals = self._cluster_globals(module)
        for func in _step_function_defs(module):
            yield from self._check_params(module, func)
            locals_ = local_names(func)
            forbidden = {"cluster", "machines"} | cluster_globals
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in forbidden
                    and node.id not in locals_
                ):
                    yield self.violation(
                        module,
                        node,
                        f"step {func.name!r} reads {node.id!r} from an enclosing "
                        "scope — steps must not see the cluster or other machines",
                    )
        for call, expr in _round_step_exprs(module):
            if is_partial_call(expr):
                yield from self._check_partial_bindings(module, expr)  # type: ignore[arg-type]

    def _cluster_globals(self, module: ModuleInfo) -> Set[str]:
        """Module-level names bound to ``*Cluster(...)`` instances."""
        assert module.tree is not None
        names: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = dotted(node.value.func) or ""
                if callee.split(".")[-1].endswith("Cluster"):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _check_params(self, module: ModuleInfo, func: ast.FunctionDef) -> Iterator[Violation]:
        args = list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs)
        for arg in args:
            annotation = ast.unparse(arg.annotation) if arg.annotation is not None else ""
            if "Cluster" in annotation or arg.arg in {"cluster", "machines"}:
                yield self.violation(
                    module,
                    arg,
                    f"step {func.name!r} takes a cluster-typed parameter "
                    f"{arg.arg!r} — steps receive only (machine, ctx)",
                )

    def _check_partial_bindings(self, module: ModuleInfo, call: ast.Call) -> Iterator[Violation]:
        cluster_globals = self._cluster_globals(module)
        bound = list(call.args[1:]) + [kw.value for kw in call.keywords]
        kw_names = {id(kw.value): kw.arg for kw in call.keywords}
        for value in bound:
            name = dotted(value)
            callee = dotted(value.func) if isinstance(value, ast.Call) else None
            kw = kw_names.get(id(value))
            if (
                (name is not None and (name == "cluster" or name in cluster_globals))
                or (callee or "").split(".")[-1].endswith("Cluster")
                or kw == "cluster"
            ):
                yield self.violation(
                    module,
                    value,
                    "partial binds a Cluster into a step — ship data as "
                    "messages, not the cluster object",
                )


#: Exception names whose handlers swallow the simulator's failure signals.
_BROAD_EXCEPTIONS = {"MPCError", "Exception", "BaseException"}


@register
class StepBroadExceptRule(Rule):
    """MPC009: steps must not catch MPCError (or broader) wholesale."""

    id = "MPC009"
    severity = Severity.WARNING
    title = "steps must not swallow the simulator's failure signals"
    fix_hint = (
        "catch the specific MPCError subclass the step genuinely handles "
        "(or let it propagate): resource violations and injected faults "
        "like WorkerDied are the cluster's enforcement and recovery "
        "signals, and a broad except inside a step disables both"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        for func in _step_function_defs(module):
            for node in ast.walk(func):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                caught = self._broad_name(node.type)
                if caught is None:
                    continue
                yield self.violation(
                    module,
                    node,
                    f"step {func.name!r} catches {caught} — this swallows "
                    "model violations and fault-injection signals the "
                    "cluster needs to see",
                )

    def _broad_name(self, type_node: Optional[ast.AST]) -> Optional[str]:
        """The broad exception this handler catches, or None if it is fine."""
        if type_node is None:
            return "everything (bare except)"
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            name = (dotted(candidate) or "").split(".")[-1]
            if name in _BROAD_EXCEPTIONS:
                return name
        return None
