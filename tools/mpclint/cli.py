"""mpclint command line interface.

Exit codes: 0 — clean; 1 — violations found; 2 — usage or internal
error.  Output is human-readable by default, ``--format json`` emits a
machine-readable report (one object with a ``violations`` list), which
is what CI and the test suite consume.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import mpclint
from mpclint.core import (
    Project,
    Severity,
    Violation,
    all_rules,
    build_project,
    run_project,
)
from mpclint.rounds import report_dict


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mpclint",
        description="AST-based invariant checker for the repro MPC simulator",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro under --root)",
    )
    parser.add_argument(
        "--docs",
        action="append",
        default=None,
        metavar="PATH",
        help="markdown file for the docs-drift rule (default: docs/API.md "
        "under --root if it exists; pass --docs none to disable)",
    )
    parser.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="repository root used to resolve defaults and report paths",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_rule_args(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.severity}]  {rule.title}")
        if rule.fix_hint:
            lines.append(f"    fix: {rule.fix_hint}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root).resolve()
    paths = [Path(p) for p in args.paths]
    if not paths:
        default = root / "src" / "repro"
        if not default.exists():
            parser.error(f"no paths given and {default} does not exist")
        paths = [default]
    for path in paths:
        if not path.exists():
            parser.error(f"path does not exist: {path}")

    if args.docs is None:
        docs = [
            doc
            for doc in (root / "docs" / "API.md", root / "docs" / "LINTING.md")
            if doc.exists()
        ]
    else:
        docs = [Path(d) for d in args.docs if d.lower() != "none"]

    try:
        project = build_project(paths, docs=docs, root=root)
        violations = run_project(
            project,
            select=_split_rule_args(args.select),
            ignore=_split_rule_args(args.ignore),
        )
    except Exception as exc:  # pragma: no cover - internal error path
        print(f"mpclint: internal error: {exc!r}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(_json_report(violations, project), indent=2, sort_keys=True))
    else:
        for violation in violations:
            print(violation.format_human())
        errors = sum(1 for v in violations if v.severity == Severity.ERROR)
        warnings = len(violations) - errors
        if violations:
            print(f"mpclint: {errors} error(s), {warnings} warning(s)")
        else:
            print(f"mpclint: clean ({len(all_rules())} rules)")
    return 1 if violations else 0


def _json_report(violations: Sequence[Violation], project: Project) -> dict:
    return {
        "tool": "mpclint",
        "version": mpclint.__version__,
        "rules": [rule.id for rule in all_rules()],
        "errors": sum(1 for v in violations if v.severity == Severity.ERROR),
        "warnings": sum(1 for v in violations if v.severity == Severity.WARNING),
        "violations": [v.as_dict() for v in violations],
        "round_analysis": report_dict(project),
    }


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
