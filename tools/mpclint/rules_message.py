"""MPC004: Message word accounting is charged exactly once.

``Message.size_words`` is computed once at construction on the sending
side and travels with the message (including through pickling).  The
cluster's communication accounting reads it at delivery; mutating it —
or rebuilding it via ``object.__setattr__`` — after construction makes
the charged cost and the delivered cost disagree, silently breaking the
bit-identical-accounting contract between executors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from mpclint.core import ModuleInfo, Project, Rule, Severity, Violation, dotted, register

#: Fields that carry the charged cost.
_ACCOUNTING_FIELDS = {"size_words"}

#: The module that owns Message construction/unpickling.
_OWNER_MODULE = "repro.mpc.message"


@register
class MessageAccountingRule(Rule):
    """MPC004: no mutation of Message size fields after construction."""

    id = "MPC004"
    severity = Severity.ERROR
    title = "Message size fields are write-once (charged at construction)"
    fix_hint = (
        "construct a new Message instead of mutating size_words; the word "
        "count is charged exactly once, on the sending side"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        if module.name == _OWNER_MODULE:
            return
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _ACCOUNTING_FIELDS
                    ):
                        yield self.violation(
                            module,
                            node,
                            f"assignment to `.{target.attr}` rewrites message "
                            "accounting after it was charged",
                        )
            elif isinstance(node, ast.Call):
                callee = dotted(node.func)
                if callee == "object.__setattr__" and len(node.args) >= 2:
                    field = node.args[1]
                    if (
                        isinstance(field, ast.Constant)
                        and field.value in _ACCOUNTING_FIELDS
                    ):
                        yield self.violation(
                            module,
                            node,
                            "object.__setattr__(..., 'size_words', ...) outside "
                            "repro.mpc.message bypasses the frozen dataclass to "
                            "rewrite charged accounting",
                        )
