"""MPC002: all randomness must flow from explicit, seedable generators.

Executor independence (and reproducibility at all) requires every random
draw in ``src/repro`` to come from ``repro.util.rng.machine_rng`` or an
explicit ``numpy.random.Generator`` argument.  Global RNG state —
``np.random.rand``-style legacy calls, the stdlib ``random`` module,
unseeded ``default_rng()``, time-derived seeds — silently couples
results to call order, process layout, and the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from mpclint.core import ModuleInfo, Project, Rule, Severity, Violation, dotted, register

#: np.random attributes that are constructors/types, not global-state draws.
_ALLOWED_NP_RANDOM = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "default_rng",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Seed factories whose arguments must not be wall-clock derived.
_SEED_FACTORIES = {"default_rng", "SeedSequence", "seed"}

_TIME_FNS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}


@register
class GlobalRandomnessRule(Rule):
    """MPC002: no global-state randomness."""

    id = "MPC002"
    severity = Severity.ERROR
    title = "randomness must come from machine_rng or an explicit Generator"
    fix_hint = (
        "derive randomness from repro.util.rng (machine_rng(base_seed, "
        "machine_id) inside steps, as_generator(seed) at entry points) "
        "instead of global RNG state"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            module,
                            node,
                            "stdlib `random` uses hidden global state — use "
                            "numpy Generators from repro.util.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.violation(
                        module,
                        node,
                        "stdlib `random` uses hidden global state — use "
                        "numpy Generators from repro.util.rng",
                    )
            elif isinstance(node, ast.Attribute):
                name = dotted(node)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) >= 3
                    and parts[0] in {"np", "numpy"}
                    and parts[1] == "random"
                    and parts[2] not in _ALLOWED_NP_RANDOM
                ):
                    yield self.violation(
                        module,
                        node,
                        f"`{name}` draws from numpy's global RNG — results "
                        "depend on call order across machines/executors",
                    )
            elif isinstance(node, ast.Call):
                callee = (dotted(node.func) or "").split(".")[-1]
                if callee == "default_rng" and not node.args and not node.keywords:
                    yield self.violation(
                        module,
                        node,
                        "unseeded default_rng() — thread the caller's seed or "
                        "Generator through instead",
                    )
                if callee in _SEED_FACTORIES:
                    yield from self._check_time_seed(module, node)

    def _check_time_seed(self, module: ModuleInfo, call: ast.Call) -> Iterator[Violation]:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    name = dotted(sub.func) or ""
                    parts = name.split(".")
                    if (
                        len(parts) == 2
                        and parts[0] == "time"
                        and parts[1] in _TIME_FNS
                    ) or (len(parts) == 1 and parts[0] in {"time_ns"}):
                        yield self.violation(
                            module,
                            sub,
                            f"wall-clock seed `{name}()` makes runs "
                            "irreproducible — derive seeds with "
                            "repro.util.rng.derive_seed",
                        )
