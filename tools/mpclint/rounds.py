"""Interprocedural round-complexity analysis: the static round ledger.

Theorems 1 and 3 claim the embedding pipeline runs in O(1) (really
O(1/eps)) MPC rounds.  ``CostReport.rounds`` measures that per run; this
module *proves* a symbolic bound per entry point at lint time, so the
claim survives refactors that never run the benchmarks:

1. Build the project call graph (:meth:`mpclint.core.Project.call_graph`)
   over every analyzed module.
2. Find each ``cluster.round(...)`` dispatch (direct, or inside the
   primitives / sort / aggregate / dedup helpers) and classify it by its
   enclosing loops:

   * ``constant`` — straight-line, or a loop with a literal bound;
   * ``budget`` — a loop whose trip count is the fan-out tree depth
     (``O(log_f m)`` with f chosen from local memory / the comm budget —
     the paper's O(1/eps), annotated ``# mpclint: rounds=O(log_f m)``);
   * ``log_delta`` — a loop over the level schedule (``range(num_levels)``
     and friends: O(log Delta) trips);
   * ``unbounded`` — a ``while`` without a ``# mpclint: rounds=`` bound,
     an unrecognized loop bound, or any recursion through a
     round-performing cycle.

3. Propagate classes bottom-up through the call graph (a call site
   inside a loop lifts its callee's class by the loop's class; the
   lattice is the max — the ledger tracks the dominant term, not exact
   exponents) and compare each public ``mpc_*`` entry point against the
   committed manifest ``tools/mpclint/round_budgets.toml``.

The manifest also carries a concrete ``cap`` per entry point — a hard
ceiling on *measured* ``CostReport.rounds`` in the repo's committed test
and benchmark configurations — which the executor-matrix tests and the
benchmark harness assert at runtime (:func:`round_cap`).  MPC011
(:mod:`mpclint.rules_rounds`) turns the static side into lint failures.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from mpclint.core import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    Project,
    round_dispatches,
)

# -- the class lattice ---------------------------------------------------

CONSTANT = "constant"
BUDGET = "budget"
LOG_DELTA = "log_delta"
UNBOUNDED = "unbounded"

#: Lattice order: the inferred class of a function is the max over its
#: sites; ``budget`` sits inside the paper's O(1/eps) "constant rounds"
#: claim, which is why a declared ``constant`` budget admits it.
RANK = {CONSTANT: 0, BUDGET: 1, LOG_DELTA: 2, UNBOUNDED: 3}

#: Declared manifest class -> highest inferred rank it admits.
DECLARED_ADMITS = {"constant": RANK[BUDGET], "log_delta": RANK[LOG_DELTA],
                   "unbounded": RANK[UNBOUNDED]}

#: Human-facing bound per class, used in reports.
CLASS_BOUND = {
    CONSTANT: "O(1)",
    BUDGET: "O(1/eps)",
    LOG_DELTA: "O(log Delta)",
    UNBOUNDED: "unbounded",
}

#: Loop-bound symbols that mean "once per level of the scale schedule"
#: (the O(log Delta) loops of Algorithm 2's optional in-model assembly).
_LEVEL_SYMBOLS = {
    "num_levels", "num_levels_", "n_levels", "levels", "scales",
    "level_schedule", "max_levels", "chain",
}

_INT_RE = re.compile(r"\d+\Z")
_O1_RE = re.compile(r"o\(\s*1\s*\)\Z")


def classify_annotation(text: str) -> str:
    """Map a ``# mpclint: rounds=<bound>`` expression onto the lattice."""
    t = text.strip().lower().replace(" ", "")
    if _O1_RE.match(t) or _INT_RE.match(t):
        return CONSTANT
    if "log_f" in t or "log2(m)" in t or "log(m)" in t or "eps" in t:
        return BUDGET
    if "delta" in t or "log" in t or "level" in t:
        return LOG_DELTA
    return UNBOUNDED


def _names_in(expr: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _classify_for_loop(node: ast.For, module: ModuleInfo) -> Tuple[str, str]:
    """(class, bound text) of a ``for`` loop's trip count."""
    ann = module.round_annotations.get(node.lineno)
    if ann is not None:
        return classify_annotation(ann), ann
    it = node.iter
    # Unwrap enumerate(...)
    if (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Name)
        and it.func.id == "enumerate"
        and it.args
    ):
        it = it.args[0]
    if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) and it.func.id == "range":
        args = it.args
        bound_expr = args[1] if len(args) >= 2 else args[0] if args else None
        if bound_expr is None:
            return UNBOUNDED, "range()"
        if all(isinstance(a, ast.Constant) for a in args):
            return CONSTANT, ast.unparse(it)
        bound = ast.unparse(bound_expr)
        if _names_in(bound_expr) & _LEVEL_SYMBOLS:
            return LOG_DELTA, f"O({bound})"
        return UNBOUNDED, f"O({bound}) [unrecognized bound]"
    bound = ast.unparse(it)
    if _names_in(it) & _LEVEL_SYMBOLS:
        return LOG_DELTA, f"O(len({bound}))"
    if isinstance(it, (ast.List, ast.Tuple)):
        return CONSTANT, f"x{len(it.elts)}"
    return UNBOUNDED, f"O(len({bound})) [unrecognized bound]"


def _classify_while_loop(node: ast.While, module: ModuleInfo) -> Tuple[str, Optional[str]]:
    """(class, bound text) of a ``while`` loop; None bound == unannotated."""
    ann = module.round_annotations.get(node.lineno)
    if ann is None:
        return UNBOUNDED, None
    return classify_annotation(ann), ann


# -- per-function facts --------------------------------------------------


@dataclass
class RoundSite:
    """One ``cluster.round(...)`` dispatch with its loop context."""

    path: str
    line: int
    function: str  # qualname of the containing function
    label: Optional[str]
    classification: str
    bound: str  # human bound text, e.g. "O(log_f m)" or "O(1)"


@dataclass
class LoopIssue:
    """A loop that performs rounds but whose trip count is not provable."""

    path: str
    line: int
    function: str
    kind: str  # "while-unannotated" | "for-unrecognized"
    detail: str


@dataclass
class FunctionRounds:
    """Round facts for one function: direct sites and round-lifting calls."""

    qualname: str
    sites: List[RoundSite] = field(default_factory=list)
    #: (callee qualname, loop class at the call site, line)
    calls: List[Tuple[str, str, int]] = field(default_factory=list)
    loop_issues: List[LoopIssue] = field(default_factory=list)
    #: while loops (line -> annotated?) that contain calls; re-checked
    #: after propagation, when callees' round behavior is known.
    while_calls: List[Tuple[int, bool, str]] = field(default_factory=list)
    cls: Optional[str] = None  # resolved class; None == performs no rounds
    recursive: bool = False


def _loop_class(stack: Sequence[Tuple[str, str]]) -> str:
    """Combined class of an enclosing-loop stack (max over the stack)."""
    cls = CONSTANT
    for loop_cls, _bound in stack:
        if RANK[loop_cls] > RANK[cls]:
            cls = loop_cls
    return cls


def _call_label(call: ast.Call) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == "label" and isinstance(kw.value, ast.Constant):
            return str(kw.value.value)
    return None


class _FunctionWalker(ast.NodeVisitor):
    """Walk one function body collecting sites/calls with loop context."""

    def __init__(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        facts: FunctionRounds,
        round_calls: Set[int],  # id()s of round-dispatch Call nodes
    ):
        self.info = info
        self.graph = graph
        self.facts = facts
        self.round_calls = round_calls
        self.local_imports = CallGraph.local_import_map(info.node, info.module)
        self.stack: List[Tuple[str, str]] = []
        self.while_stack: List[List[Tuple[int, bool]]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.info.node:
            return  # nested defs (steps) do not run in the driver
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def visit_For(self, node: ast.For) -> None:
        cls, bound = _classify_for_loop(node, self.info.module)
        if cls == UNBOUNDED:
            # Only an issue if the loop actually performs rounds; record
            # provisionally and let the analysis decide.
            self._visit_loop(node, cls, bound, for_issue=(node.lineno, bound))
        else:
            self._visit_loop(node, cls, bound)

    def visit_While(self, node: ast.While) -> None:
        cls, bound = _classify_while_loop(node, self.info.module)
        annotated = bound is not None
        self.while_stack.append([(node.lineno, annotated)])
        self._visit_loop(node, cls, bound or "unannotated while")
        self.while_stack.pop()

    def _visit_loop(
        self,
        node: ast.AST,
        cls: str,
        bound: str,
        for_issue: Optional[Tuple[int, str]] = None,
    ) -> None:
        self.stack.append((cls, bound))
        self._for_issue = getattr(self, "_for_issue", [])
        if for_issue is not None:
            self._for_issue.append(for_issue)
        self.generic_visit(node)
        if for_issue is not None:
            self._for_issue.pop()
        self.stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if id(node) in self.round_calls:
            cls = _loop_class(self.stack)
            bound = self.stack[-1][1] if self.stack else "O(1)"
            if not self.stack:
                bound = "O(1)"
            self.facts.sites.append(
                RoundSite(
                    path=self.info.module.rel,
                    line=node.lineno,
                    function=self.facts.qualname,
                    label=_call_label(node),
                    classification=cls,
                    bound=bound,
                )
            )
            self._record_loop_issues(node.lineno, performs_rounds=True)
        else:
            callee = self.graph.resolve_call(
                self.info.module, node.func, self.local_imports
            )
            if callee is not None and callee != self.facts.qualname:
                self.facts.calls.append((callee, _loop_class(self.stack), node.lineno))
                if self.while_stack:
                    for line, annotated in self.while_stack[-1]:
                        self.facts.while_calls.append((line, annotated, callee))
            elif callee == self.facts.qualname:
                self.facts.recursive = True
        self.generic_visit(node)

    def _record_loop_issues(self, line: int, *, performs_rounds: bool) -> None:
        if not performs_rounds:
            return
        for while_line, annotated in (self.while_stack[-1] if self.while_stack else ()):
            if not annotated:
                self.facts.loop_issues.append(
                    LoopIssue(
                        path=self.info.module.rel,
                        line=while_line,
                        function=self.facts.qualname,
                        kind="while-unannotated",
                        detail=f"round dispatch at line {line}",
                    )
                )
        for for_line, bound in getattr(self, "_for_issue", []):
            self.facts.loop_issues.append(
                LoopIssue(
                    path=self.info.module.rel,
                    line=for_line,
                    function=self.facts.qualname,
                    kind="for-unrecognized",
                    detail=f"{bound}; round dispatch at line {line}",
                )
            )


# -- whole-project analysis ----------------------------------------------


@dataclass
class EntrySummary:
    """Inferred round behavior of one ``mpc_*`` entry point."""

    name: str
    qualname: str
    path: str
    line: int
    cls: Optional[str]  # None == performs no rounds at all
    sites: List[Dict[str, object]] = field(default_factory=list)

    @property
    def bound(self) -> str:
        return "0" if self.cls is None else CLASS_BOUND[self.cls]


@dataclass
class RoundAnalysis:
    """Everything MPC011 and the CLI report need."""

    functions: Dict[str, FunctionRounds]
    graph: CallGraph
    entries: Dict[str, EntrySummary]
    loop_issues: List[LoopIssue]
    recursive: List[str]

    def function_class(self, qualname: str) -> Optional[str]:
        facts = self.functions.get(qualname)
        return facts.cls if facts is not None else None


def _tarjan_sccs(nodes: Sequence[str], edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components, iterative Tarjan (no rec. limit)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(edges.get(node, ()))
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def analyze_project(project: Project) -> RoundAnalysis:
    """Run the full interprocedural analysis (cached on the project)."""
    cached = getattr(project, "_round_analysis", None)
    if cached is not None:
        return cached

    graph = project.call_graph()
    functions: Dict[str, FunctionRounds] = {}
    for qualname, info in graph.functions.items():
        facts = FunctionRounds(qualname)
        round_call_ids = {id(call) for call, _step in round_dispatches(info.node)}
        walker = _FunctionWalker(info, graph, facts, round_call_ids)
        walker.generic_visit(info.node)
        functions[qualname] = facts

    # SCCs: recursion through a round-performing cycle is unbounded.
    edges = {q: {c for c, _cls, _line in f.calls} for q, f in functions.items()}
    recursive: Set[str] = {q for q, f in functions.items() if f.recursive}
    for scc in _tarjan_sccs(sorted(functions), edges):
        if len(scc) > 1:
            recursive.update(scc)

    # Bottom-up fixpoint over the finite lattice (max is monotone).
    changed = True
    while changed:
        changed = False
        for qualname, facts in functions.items():
            cls = facts.cls
            for site in facts.sites:
                if cls is None or RANK[site.classification] > RANK[cls]:
                    cls = site.classification
            for callee, loop_cls, _line in facts.calls:
                callee_cls = functions[callee].cls if callee in functions else None
                if callee_cls is None:
                    continue
                lifted = callee_cls if RANK[callee_cls] >= RANK[loop_cls] else loop_cls
                if cls is None or RANK[lifted] > RANK[cls]:
                    cls = lifted
            if cls != facts.cls:
                facts.cls = cls
                changed = True
    for qualname in recursive:
        facts = functions[qualname]
        if facts.cls is not None:
            facts.cls = UNBOUNDED

    # Loop issues: the per-function walk already caught direct dispatches
    # inside bad loops; now that callees are resolved, flag while loops
    # whose *calls* perform rounds too.
    loop_issues: List[LoopIssue] = []
    seen_issue: Set[Tuple[str, int, str]] = set()
    for facts in functions.values():
        for issue in facts.loop_issues:
            key = (issue.path, issue.line, issue.kind)
            if key not in seen_issue:
                seen_issue.add(key)
                loop_issues.append(issue)
        for line, annotated, callee in facts.while_calls:
            if annotated:
                continue
            callee_cls = functions[callee].cls if callee in functions else None
            if callee_cls is None:
                continue
            info = graph.functions[facts.qualname]
            key = (info.module.rel, line, "while-unannotated")
            if key not in seen_issue:
                seen_issue.add(key)
                loop_issues.append(
                    LoopIssue(
                        path=info.module.rel,
                        line=line,
                        function=facts.qualname,
                        kind="while-unannotated",
                        detail=f"calls round-performing {callee}",
                    )
                )

    entries: Dict[str, EntrySummary] = {}
    for qualname, info in graph.functions.items():
        short = info.node.name
        if not short.startswith("mpc_"):
            continue
        entries[short] = EntrySummary(
            name=short,
            qualname=qualname,
            path=info.module.rel,
            line=info.node.lineno,
            cls=functions[qualname].cls,
            sites=_collect_sites(qualname, functions),
        )

    analysis = RoundAnalysis(
        functions=functions,
        graph=graph,
        entries=entries,
        loop_issues=loop_issues,
        recursive=sorted(recursive),
    )
    project._round_analysis = analysis  # type: ignore[attr-defined]
    return analysis


def _collect_sites(
    entry: str, functions: Dict[str, FunctionRounds]
) -> List[Dict[str, object]]:
    """Flatten every round site reachable from ``entry`` with its lifted
    class and the call chain it is reached through."""
    out: List[Dict[str, object]] = []
    seen: Set[Tuple[str, str]] = set()  # (function, lift class) pairs visited

    def visit(qualname: str, lift: str, via: Tuple[str, ...]) -> None:
        if (qualname, lift) in seen or qualname not in functions:
            return
        seen.add((qualname, lift))
        facts = functions[qualname]
        for site in facts.sites:
            effective = site.classification if RANK[site.classification] >= RANK[lift] else lift
            out.append(
                {
                    "path": site.path,
                    "line": site.line,
                    "label": site.label,
                    "classification": effective,
                    "bound": site.bound,
                    "via": list(via + (qualname,)),
                }
            )
        for callee, loop_cls, _line in facts.calls:
            next_lift = loop_cls if RANK[loop_cls] >= RANK[lift] else lift
            visit(callee, next_lift, via + (qualname,))

    visit(entry, CONSTANT, ())
    out.sort(key=lambda s: (s["path"], s["line"]))
    return out


# -- the committed manifest ----------------------------------------------

MANIFEST_RELPATH = Path("tools") / "mpclint" / "round_budgets.toml"
VALID_DECLARED = frozenset(DECLARED_ADMITS)


@dataclass(frozen=True)
class RoundBudget:
    """One manifest entry: declared class + concrete runtime cap."""

    entry: str
    declared: str  # "constant" | "log_delta" | "unbounded"
    cap: int
    module: str = ""
    note: str = ""


def repo_root() -> Path:
    """The checkout root (this file lives at tools/mpclint/rounds.py)."""
    return Path(__file__).resolve().parents[2]


def manifest_path(root: Optional[Path] = None) -> Path:
    return (root or repo_root()) / MANIFEST_RELPATH


def load_round_budgets(root: Optional[Path] = None) -> Dict[str, RoundBudget]:
    """Parse ``round_budgets.toml`` into {entry name: RoundBudget}.

    Raises ``FileNotFoundError`` when the manifest is missing and
    ``ValueError`` on malformed entries — the runtime cross-checks want
    loud failures, while MPC011 catches both and reports violations.
    """
    import tomllib

    path = manifest_path(root)
    with open(path, "rb") as fh:
        raw = tomllib.load(fh)
    budgets: Dict[str, RoundBudget] = {}
    for entry, table in raw.items():
        if not isinstance(table, dict):
            raise ValueError(f"round_budgets.toml: [{entry}] must be a table")
        declared = table.get("class")
        cap = table.get("cap")
        if declared not in VALID_DECLARED:
            raise ValueError(
                f"round_budgets.toml: [{entry}] class must be one of "
                f"{sorted(VALID_DECLARED)}, got {declared!r}"
            )
        if not isinstance(cap, int) or isinstance(cap, bool) or cap <= 0:
            raise ValueError(
                f"round_budgets.toml: [{entry}] cap must be a positive int, "
                f"got {cap!r}"
            )
        budgets[entry] = RoundBudget(
            entry=entry,
            declared=declared,
            cap=cap,
            module=str(table.get("module", "")),
            note=str(table.get("note", "")),
        )
    return budgets


def round_cap(entry: str, root: Optional[Path] = None) -> int:
    """The manifest's concrete round cap for ``entry``.

    The runtime cross-check: executor-matrix tests and the benchmark
    harness assert ``CostReport.rounds <= round_cap(name)`` after running
    an entry point, closing the loop between the static ledger and the
    measured accounting.
    """
    budgets = load_round_budgets(root)
    if entry not in budgets:
        raise KeyError(
            f"{entry!r} has no round budget — add it to {MANIFEST_RELPATH}"
        )
    return budgets[entry].cap


def report_dict(project: Project, root: Optional[Path] = None) -> Dict[str, object]:
    """The per-entry-point round report the CLI embeds in ``--json``."""
    analysis = analyze_project(project)
    try:
        budgets = load_round_budgets(root or project.root)
    except (FileNotFoundError, ValueError):
        budgets = {}
    entries = []
    for name in sorted(analysis.entries):
        entry = analysis.entries[name]
        budget = budgets.get(name)
        entries.append(
            {
                "entry": name,
                "qualname": entry.qualname,
                "path": entry.path,
                "line": entry.line,
                "inferred_class": entry.cls,
                "inferred_bound": entry.bound,
                "declared_class": budget.declared if budget else None,
                "cap": budget.cap if budget else None,
                "within_budget": (
                    None
                    if budget is None
                    else (entry.cls is None
                          or RANK[entry.cls] <= DECLARED_ADMITS[budget.declared])
                ),
                "sites": entry.sites,
            }
        )
    return {
        "manifest": str(MANIFEST_RELPATH),
        "manifest_found": bool(budgets),
        "entries": entries,
        "unbounded_loops": [
            {
                "path": issue.path,
                "line": issue.line,
                "function": issue.function,
                "kind": issue.kind,
                "detail": issue.detail,
            }
            for issue in sorted(
                analysis.loop_issues, key=lambda i: (i.path, i.line)
            )
        ],
        "recursive": [
            q for q in analysis.recursive
            if analysis.functions[q].cls is not None
        ],
    }
