"""MPC011: the static round ledger (round-complexity budget rule).

Backed by :mod:`mpclint.rounds`.  The rule fails lint when:

* a loop performs MPC rounds but its trip count is not provable — a
  ``while`` whose header lacks a ``# mpclint: rounds=<bound>`` annotation,
  or a ``for`` over an unrecognized bound (annotate the header to fix);
* rounds are dispatched through a recursive call cycle;
* the manifest ``tools/mpclint/round_budgets.toml`` is malformed, names
  an entry point that no longer exists, or misses an exported ``mpc_*``
  entry point;
* an entry point's inferred round class exceeds what its declared class
  admits (``constant`` admits budget-wave ``O(1/eps)`` fan-out trees, the
  paper's notion of constant rounds; ``log_delta`` admits up to
  O(log Delta); anything inferred ``unbounded`` always fails).

Projects without a manifest (rule fixtures, scratch trees) skip the
manifest checks; the loop/recursion checks still apply, so the seeded
violation fixtures exercise the analyzer without one.
"""

from __future__ import annotations

from typing import Iterator

from mpclint.core import Project, Rule, Severity, Violation, register
from mpclint.rounds import (
    CLASS_BOUND,
    DECLARED_ADMITS,
    MANIFEST_RELPATH,
    RANK,
    UNBOUNDED,
    analyze_project,
    load_round_budgets,
)


@register
class RoundComplexityRule(Rule):
    """MPC011: every entry point's inferred round bound fits its budget."""

    id = "MPC011"
    severity = Severity.ERROR
    title = "round-complexity budget violated or unprovable"
    fix_hint = (
        "bound the loop with a `# mpclint: rounds=<bound>` annotation, or "
        "update tools/mpclint/round_budgets.toml if the complexity class "
        "genuinely changed"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        analysis = analyze_project(project)
        by_rel = {m.rel: m for m in project.modules}

        for issue in analysis.loop_issues:
            module = by_rel.get(issue.path)
            if module is None:
                continue
            if issue.kind == "while-unannotated":
                message = (
                    f"while loop in {issue.function} performs MPC rounds "
                    f"({issue.detail}) without a `# mpclint: rounds=<bound>` "
                    "annotation — its round count is unprovable"
                )
            else:
                message = (
                    f"for loop in {issue.function} performs MPC rounds with an "
                    f"unrecognized bound ({issue.detail}) — annotate the loop "
                    "header with `# mpclint: rounds=<bound>`"
                )
            yield self.violation(module, issue.line, message)

        for qualname in analysis.recursive:
            facts = analysis.functions[qualname]
            if facts.cls is None:
                continue  # recursion that never touches the cluster is fine
            info = analysis.graph.functions[qualname]
            yield self.violation(
                info.module,
                info.node,
                f"{qualname} dispatches MPC rounds through a recursive call "
                "cycle — round count is unbounded",
                fix_hint="restructure the recursion into a bounded loop and "
                "annotate it",
            )

        try:
            budgets = load_round_budgets(project.root)
        except FileNotFoundError:
            return  # no manifest: fixture/scratch tree, skip budget checks
        except ValueError as exc:
            yield self.doc_violation(str(MANIFEST_RELPATH), 1, str(exc))
            return

        for name in sorted(analysis.entries):
            entry = analysis.entries[name]
            budget = budgets.get(name)
            module = by_rel.get(entry.path)
            if budget is None:
                if module is not None:
                    yield self.violation(
                        module,
                        entry.line,
                        f"entry point {name} has no round budget — add a "
                        f"[{name}] table to {MANIFEST_RELPATH}",
                    )
                continue
            if entry.cls is None:
                continue  # performs no rounds: trivially within any budget
            if RANK[entry.cls] > DECLARED_ADMITS[budget.declared]:
                detail = (
                    "unbounded round site (see the loop/recursion findings)"
                    if entry.cls == UNBOUNDED
                    else f"inferred {CLASS_BOUND[entry.cls]}"
                )
                if module is not None:
                    yield self.violation(
                        module,
                        entry.line,
                        f"entry point {name} declares class "
                        f"{budget.declared!r} but analysis infers "
                        f"{entry.cls!r} ({detail})",
                    )

        for name in sorted(budgets):
            if name not in analysis.entries:
                yield self.doc_violation(
                    str(MANIFEST_RELPATH),
                    1,
                    f"manifest entry [{name}] names no exported mpc_* entry "
                    "point in the analyzed tree — remove or rename it",
                )
