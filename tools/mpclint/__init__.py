"""mpclint — AST-based invariant checker for the repro MPC simulator.

The simulator's correctness rests on conventions the runtime can only
police *after* the fact (pickle failures in the process executor,
``StorageIsolationViolation`` guards, accounting asserts).  mpclint
enforces them statically, across the whole tree, at lint time:

* step functions must be module-level, picklable callables (MPC001);
* all randomness must flow from ``machine_rng`` / explicit generators,
  never global RNG state (MPC002);
* step functions must not write module-level mutable globals (MPC003);
* ``Message`` word accounting is charged exactly once (MPC004);
* the exported API must exist and ``mpc_*`` entry points must accept
  ``executor=`` (MPC005);
* numeric code must not compare floats with bare ``==`` (MPC006);
* steps only touch the machine they are handed (MPC007);
* ``docs/API.md`` must not drift from the tree (MPC008);
* steps must not catch ``MPCError`` or broader — model violations and
  fault-injection signals must reach the cluster (MPC009, warning);
* steps must not stash arena views outside the machine or ship raw
  memoryview/SharedMemory buffers — the shm executor's zero-copy
  lifetime contract (MPC010);
* every ``mpc_*`` entry point's statically inferred round complexity
  must fit its declared budget in ``tools/mpclint/round_budgets.toml``,
  and every loop that performs rounds must have a provable or annotated
  bound (MPC011 — see :mod:`mpclint.rounds`);
* every ``# mpclint: disable=`` suppression must still silence something
  (MPC012, warning — the unused-noqa check).

Run it as ``python -m repro.lint`` (with ``PYTHONPATH=src``), via
``make lint``, or import :func:`run_paths` programmatically.  Rules are
pluggable — see ``docs/LINTING.md`` for the catalogue, the
``# mpclint: disable=RULE`` suppression syntax, and how to add a rule.
"""

from mpclint.core import (
    Project,
    Rule,
    Severity,
    Violation,
    all_rules,
    register,
    run_paths,
)
from mpclint.rounds import load_round_budgets, round_cap

# Importing the rule modules registers every built-in rule.
from mpclint import rules_steps  # noqa: F401  (registration side effect)
from mpclint import rules_rng  # noqa: F401
from mpclint import rules_message  # noqa: F401
from mpclint import rules_api  # noqa: F401
from mpclint import rules_numeric  # noqa: F401
from mpclint import rules_shm  # noqa: F401
from mpclint import rules_rounds  # noqa: F401

__version__ = "1.3.0"

__all__ = [
    "Project",
    "Rule",
    "Severity",
    "Violation",
    "all_rules",
    "load_round_budgets",
    "register",
    "round_cap",
    "run_paths",
    "__version__",
]
