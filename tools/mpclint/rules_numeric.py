"""MPC006: no bare ``==`` / ``!=`` against float literals.

Distortion bounds, cost ratios, and geometry predicates all live in
floating point; exact comparison against a float literal is almost
always a latent bug (it worked on the one input it was written against).
Require ``np.isclose`` / ``math.isclose`` or an explicit tolerance — or
an inequality when the value is exactly representable (``x <= 0.0``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from mpclint.core import ModuleInfo, Project, Rule, Severity, Violation, register


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Unary minus on a float literal: ``x == -1.5``.
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    ):
        return True
    return False


@register
class FloatEqualityRule(Rule):
    """MPC006: float literals must not be compared with bare ==/!=."""

    id = "MPC006"
    severity = Severity.WARNING
    title = "bare float equality comparison"
    fix_hint = (
        "use np.isclose(x, v) / math.isclose(x, v, abs_tol=...) with an "
        "explicit tolerance, or an inequality if the boundary is exact"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.violation(
                        module,
                        node,
                        "exact ==/!= against a float literal — floating-point "
                        "results rarely hit literals exactly",
                    )
                    break
