"""mpclint framework: rule registry, project model, suppressions, runner.

The analyzer is deliberately self-contained (stdlib only — ``ast``,
``re``, ``json``) so it can lint the tree without importing it; every
check is static.  The moving parts:

* :class:`ModuleInfo` — one parsed source file: AST, raw lines,
  top-level bindings, and the ``# mpclint: disable=`` suppression map.
* :class:`Project` — all modules plus any docs files, with a static
  symbol table (``top_level``/``is_module``/``resolve_dotted``) shared
  by the cross-module rules (MPC005, MPC008).
* :class:`Rule` — base class.  Subclasses set ``id`` / ``severity`` /
  ``title`` / ``fix_hint`` and implement ``check_module`` (called once
  per file) and/or ``check_project`` (called once per run).
* :func:`register` — decorator adding a rule class to the registry;
  importing a rule module is all it takes to enable its rules.
* :func:`run_paths` — the entry point the CLI and the tests share.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type


class Severity:
    """Violation severities (plain strings so JSON output stays trivial)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, what went wrong, how to fix it."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    fix_hint: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def format_human(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"
        if self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text


#: ``# mpclint: disable=MPC001,MPC002`` on (or at the end of) a line
#: suppresses those rules for that line; ``disable=all`` suppresses every
#: rule.  ``# mpclint: disable-file=MPC006`` anywhere in the first
#: FILE_SUPPRESSION_WINDOW lines suppresses for the whole file.
_SUPPRESS_RE = re.compile(r"#\s*mpclint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*mpclint:\s*disable-file=([A-Za-z0-9_,\s]+)")
FILE_SUPPRESSION_WINDOW = 15

#: ``# mpclint: rounds=O(log_f m)`` on a loop header declares the loop's
#: symbolic round bound for the round-complexity analyzer (MPC011).
_ROUNDS_RE = re.compile(r"#\s*mpclint:\s*rounds=([^#]+)")


def _parse_rule_list(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


class ModuleInfo:
    """One parsed python source file plus the static facts rules share."""

    def __init__(self, path: Path, rel: str, name: str, source: str):
        self.path = path
        self.rel = rel
        self.name = name
        self.source = source
        self.lines = source.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self.file_suppression_lines: Dict[str, int] = {}
        self.round_annotations: Dict[int, str] = {}
        self._scan_suppressions()
        self.top_level: Set[str] = set()
        self.module_aliases: Set[str] = set()
        #: locally bound name -> dotted import target (``broadcast`` ->
        #: ``repro.mpc.primitives.broadcast``), used by the call graph.
        self.import_map: Dict[str, str] = {}
        self.star_imports: List[str] = []
        self.all_exports: Optional[List[Tuple[str, int]]] = None
        if self.tree is not None:
            self._scan_top_level()

    def _scan_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                self.suppressions.setdefault(lineno, set()).update(
                    _parse_rule_list(match.group(1))
                )
            if lineno <= FILE_SUPPRESSION_WINDOW:
                match = _SUPPRESS_FILE_RE.search(text)
                if match:
                    for token in _parse_rule_list(match.group(1)):
                        self.file_suppressions.add(token)
                        self.file_suppression_lines.setdefault(token, lineno)
            match = _ROUNDS_RE.search(text)
            if match:
                self.round_annotations[lineno] = match.group(1).strip()

    def _scan_top_level(self) -> None:
        assert self.tree is not None
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.top_level.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self.top_level.add(name_node.id)
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "__all__"
                    and isinstance(node.value, (ast.List, ast.Tuple))
                ):
                    self.all_exports = [
                        (elt.value, elt.lineno)
                        for elt in node.value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    ]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.top_level.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.top_level.add(bound)
                    self.module_aliases.add(bound)
                    self.import_map[bound] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_import_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        if node.module and node.level == 0:
                            self.star_imports.append(node.module)
                    else:
                        bound = alias.asname or alias.name
                        self.top_level.add(bound)
                        if base is not None:
                            self.import_map[bound] = f"{base}.{alias.name}"

    def resolve_import_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Dotted module a ``from ... import`` pulls from, or None.

        Relative imports resolve against this module's package (``from .
        import x`` in ``repro.mpc.sort`` -> ``repro.mpc``); levels deeper
        than the package nesting give None.
        """
        if node.level == 0:
            return node.module
        # ``repro.mpc.sort`` and ``repro.mpc.__init__`` both live in
        # package ``repro.mpc``; each extra dot climbs one level.
        parts = self.name.split(".")[:-1]
        if node.level - 1 > len(parts):
            return None
        base_parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return self.suppression_hit(rule_id, line) is not None

    def suppression_hit(
        self, rule_id: str, line: int
    ) -> Optional[Tuple[str, str, int]]:
        """The suppression that silences ``rule_id`` at ``line``, if any.

        Returns ``(scope, token, marker_line)`` with scope ``"file"`` or
        ``"line"`` and token the rule id (or ``"ALL"``) that matched —
        the runner uses this to track which markers actually fire so
        MPC012 can warn about the stale ones.
        """
        rule_id = rule_id.upper()
        for token in (rule_id, "ALL"):
            if token in self.file_suppressions:
                return ("file", token, self.file_suppression_lines.get(token, 1))
        active = self.suppressions.get(line, ())
        for token in (rule_id, "ALL"):
            if token in active:
                return ("line", token, line)
        return None


class Project:
    """All modules under analysis plus docs files and the symbol table."""

    def __init__(self, root: Path):
        self.root = root
        self.modules: List[ModuleInfo] = []
        self.by_name: Dict[str, ModuleInfo] = {}
        self.docs: Dict[str, str] = {}
        self._call_graph: Optional["CallGraph"] = None

    def call_graph(self) -> "CallGraph":
        """The project-wide call graph, built on first use and cached."""
        if self._call_graph is None:
            self._call_graph = CallGraph(self)
        return self._call_graph

    # -- construction ---------------------------------------------------

    def add_module(self, path: Path) -> ModuleInfo:
        rel = self._relpath(path)
        name = module_name_for(path)
        info = ModuleInfo(path, rel, name, path.read_text())
        self.modules.append(info)
        self.by_name[name] = info
        return info

    def add_doc(self, path: Path) -> None:
        self.docs[self._relpath(path)] = path.read_text()

    def _relpath(self, path: Path) -> str:
        try:
            return str(path.resolve().relative_to(self.root.resolve()))
        except ValueError:
            return str(path)

    # -- symbol table ---------------------------------------------------

    def is_module(self, dotted: str) -> bool:
        """Is ``dotted`` a module (or package) in the analyzed set?"""
        return dotted in self.by_name or f"{dotted}.__init__" in self.by_name

    def module(self, dotted: str) -> Optional[ModuleInfo]:
        info = self.by_name.get(dotted)
        if info is None:
            info = self.by_name.get(f"{dotted}.__init__")
        return info

    def submodules(self, dotted: str) -> Set[str]:
        prefix = dotted + "."
        out = set()
        for name in self.by_name:
            if name.startswith(prefix):
                child = name[len(prefix) :].split(".")[0]
                if child != "__init__":
                    out.add(child)
        return out

    def top_level_names(self, dotted: str, *, follow_stars: bool = True) -> Set[str]:
        """Names bound at the top level of ``dotted`` (plus submodules)."""
        info = self.module(dotted)
        if info is None:
            return set()
        names = set(info.top_level) | self.submodules(dotted)
        if follow_stars:
            for star in info.star_imports:
                names |= self.top_level_names(star, follow_stars=False)
        return names

    def resolve_dotted(self, dotted: str) -> bool:
        """Can ``dotted`` (e.g. ``repro.mpc.sort.sort_by_key``) be resolved?

        Walks module segments as far as the analyzed set extends, then
        requires the next segment to be a top-level name of the last
        module.  Segments *past* a resolved non-module symbol (attribute
        chains like ``Cluster.round``) are not checkable statically and
        are accepted.  Returns False only on a definite miss.
        """
        parts = dotted.split(".")
        if not self.is_module(parts[0]):
            return False
        current = parts[0]
        for idx in range(1, len(parts)):
            candidate = f"{current}.{parts[idx]}"
            if self.is_module(candidate):
                current = candidate
                continue
            return parts[idx] in self.top_level_names(current)
        return True


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists.

    ``src/repro/mpc/sort.py`` -> ``repro.mpc.sort``; a loose fixture file
    maps to its stem.  ``__init__.py`` maps to ``package.__init__`` so a
    package and its init file are distinguishable in the table.
    """
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


# -- AST helpers shared by rule modules ---------------------------------


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def is_partial_call(node: ast.AST) -> bool:
    """Is ``node`` a ``functools.partial(...)`` / ``partial(...)`` call?"""
    if not isinstance(node, ast.Call):
        return False
    name = dotted(node.func)
    return name in {"partial", "functools.partial"}


@dataclass
class FunctionScope:
    """One function definition plus its nesting context."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    depth: int  # 0 == module level
    parent: Optional["FunctionScope"]

    @property
    def name(self) -> Optional[str]:
        return getattr(self.node, "name", None)


def function_scopes(tree: ast.Module) -> List[FunctionScope]:
    """Every function/lambda in the module with its nesting depth.

    Depth counts enclosing *functions* only — a method of a module-level
    class has depth 0 (it is picklable by qualified name just like a
    module-level def is).
    """
    scopes: List[FunctionScope] = []

    def visit(node: ast.AST, depth: int, parent: Optional[FunctionScope]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                scope = FunctionScope(child, depth, parent)
                scopes.append(scope)
                visit(child, depth + 1, scope)
            elif isinstance(child, ast.ClassDef):
                visit(child, depth, parent)
            else:
                visit(child, depth, parent)

    visit(tree, 0, None)
    return scopes


def local_names(func: ast.AST) -> Set[str]:
    """Names bound inside ``func``: params, assignments, loop/with/except
    targets, comprehension variables, and nested def/class names."""
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    body = getattr(func, "body", [])
    nodes = body if isinstance(body, list) else [body]
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


#: Receivers whose ``.round(...)`` is numeric rounding, not an MPC round.
NUMERIC_ROUND_RECEIVERS = {"np", "numpy", "math", "builtins", "operator", "decimal"}


def round_dispatches(tree: ast.AST) -> List[Tuple[ast.Call, ast.AST]]:
    """``(call, step_expression)`` for every MPC round dispatch under ``tree``.

    Matches ``<receiver>.round(step, ...)`` where the receiver looks like
    a cluster (name contains "cluster") or the call carries the
    simulator's ``label=`` keyword, plus ``<executor>.run_round(machines,
    ids, step, ...)``.  ``np.round`` and friends are excluded.  Shared by
    the step-shape rules (MPC001/003/007/009) and the round-complexity
    analyzer (MPC011).
    """
    out: List[Tuple[ast.Call, ast.AST]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        receiver = dotted(node.func.value) or ""
        root = receiver.split(".")[0]
        if node.func.attr == "round" and root not in NUMERIC_ROUND_RECEIVERS:
            cluster_like = "cluster" in receiver.lower()
            has_label = any(kw.arg == "label" for kw in node.keywords)
            if (cluster_like or has_label) and node.args:
                out.append((node, node.args[0]))
        elif node.func.attr == "run_round":
            step: Optional[ast.AST] = None
            if len(node.args) >= 3:
                step = node.args[2]
            else:
                for kw in node.keywords:
                    if kw.arg == "step":
                        step = kw.value
            if step is not None:
                out.append((node, step))
    return out


# -- call graph ----------------------------------------------------------


@dataclass
class FunctionInfo:
    """One module-level function in the analyzed set."""

    qualname: str  # ``repro.mpc.primitives.broadcast``
    module: ModuleInfo
    node: ast.FunctionDef


class CallGraph:
    """Project-wide static call graph over module-level functions.

    Nodes are top-level ``def``s keyed by dotted qualname; edges are
    resolved direct calls (``broadcast(...)`` through the import table,
    ``primitives.broadcast(...)`` through module aliases, including
    function-local imports and one re-export hop through a package
    ``__init__``).  Method calls and out-of-tree callees are not nodes —
    callers get ``None`` back from :meth:`resolve_call` for those.
    """

    _MAX_REEXPORT_HOPS = 4

    def __init__(self, project: "Project"):
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        for module in project.modules:
            if module.tree is None:
                continue
            for node in module.tree.body:
                if isinstance(node, ast.FunctionDef):
                    qual = f"{self._owner(module)}.{node.name}"
                    self.functions[qual] = FunctionInfo(qual, module, node)

    @staticmethod
    def _owner(module: ModuleInfo) -> str:
        name = module.name
        return name[: -len(".__init__")] if name.endswith(".__init__") else name

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def _chase_reexport(self, dotted_target: str) -> Optional[str]:
        """Follow ``pkg.__init__`` import chains to a function qualname."""
        current = dotted_target
        for _ in range(self._MAX_REEXPORT_HOPS):
            if current in self.functions:
                return current
            mod_path, _, symbol = current.rpartition(".")
            if not symbol:
                return None
            info = self.project.module(mod_path)
            if info is None or symbol not in info.import_map:
                return None
            current = info.import_map[symbol]
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        func_expr: ast.AST,
        local_imports: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Qualname of the analyzed function ``func_expr`` calls, or None."""
        name = dotted(func_expr)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target: Optional[str] = None
        if local_imports and head in local_imports:
            target = local_imports[head]
        elif head in module.import_map:
            target = module.import_map[head]
        elif not rest and f"{self._owner(module)}.{head}" in self.functions:
            return f"{self._owner(module)}.{head}"
        if target is None:
            return None
        if rest:
            target = f"{target}.{rest}"
        return self._chase_reexport(target)

    @staticmethod
    def local_import_map(func: ast.FunctionDef, module: ModuleInfo) -> Dict[str, str]:
        """Import bindings made inside ``func`` (deferred-import idiom)."""
        out: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    out[bound] = alias.name if alias.asname else bound
            elif isinstance(node, ast.ImportFrom):
                base = module.resolve_import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name != "*":
                        out[alias.asname or alias.name] = f"{base}.{alias.name}"
        return out


# -- rules ---------------------------------------------------------------


class Rule:
    """Base class for mpclint rules.

    Subclasses set the class attributes and override ``check_module``
    and/or ``check_project``.  Violations the base helpers emit are
    created unsuppressed; the runner applies the suppression map.
    """

    id: str = "MPC000"
    severity: str = Severity.ERROR
    title: str = ""
    fix_hint: str = ""

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Violation]:
        return iter(())

    # -- helpers --------------------------------------------------------

    def violation(
        self,
        module: ModuleInfo,
        node: object,
        message: str,
        *,
        fix_hint: Optional[str] = None,
    ) -> Violation:
        line = getattr(node, "lineno", node if isinstance(node, int) else 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            path=module.rel,
            line=int(line),
            col=int(col),
            rule_id=self.id,
            severity=self.severity,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )

    def doc_violation(self, rel: str, line: int, message: str) -> Violation:
        return Violation(
            path=rel,
            line=line,
            col=0,
            rule_id=self.id,
            severity=self.severity,
            message=message,
            fix_hint=self.fix_hint,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add to the global registry."""
    rule = cls()
    if rule.id in _REGISTRY and type(_REGISTRY[rule.id]) is not cls:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls

def all_rules() -> List[Rule]:
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def rule_ids() -> Set[str]:
    return set(_REGISTRY)


@register
class UnusedSuppressionRule(Rule):
    """MPC012: every ``# mpclint: disable=`` marker must still suppress
    something (ruff's unused-noqa, for mpclint).

    The logic lives in the runner (:func:`run_project`): only after all
    selected rules have fired is it known which markers matched.  This
    class exists so the rule has a catalogue entry, documentation, and a
    stable id for ``--select`` / ``--ignore`` / ``disable=``.
    """

    id = "MPC012"
    severity = Severity.WARNING
    title = "unused # mpclint: disable= suppression"
    fix_hint = (
        "remove the stale suppression comment (or fix its rule id): it no "
        "longer silences any violation"
    )


# -- runner --------------------------------------------------------------


def _iter_py_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        yield path
        return
    for sub in sorted(path.rglob("*.py")):
        if "__pycache__" not in sub.parts:
            yield sub


def build_project(
    paths: Sequence[Path], docs: Sequence[Path] = (), root: Optional[Path] = None
) -> Project:
    root = (root or Path.cwd()).resolve()
    project = Project(root)
    seen: Set[Path] = set()
    for path in paths:
        for file in _iter_py_files(Path(path)):
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                project.add_module(resolved)
    for doc in docs:
        doc = Path(doc)
        if doc.exists():
            project.add_doc(doc)
    return project


def run_project(
    project: Project,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    selected = {r.upper() for r in select} if select else None
    ignored = {r.upper() for r in ignore} if ignore else set()
    violations: List[Violation] = []

    for module in project.modules:
        if module.syntax_error is not None:
            violations.append(
                Violation(
                    path=module.rel,
                    line=module.syntax_error.lineno or 1,
                    col=module.syntax_error.offset or 0,
                    rule_id="MPC000",
                    severity=Severity.ERROR,
                    message=f"syntax error: {module.syntax_error.msg}",
                )
            )

    ran: Set[str] = set()
    for rule in all_rules():
        if selected is not None and rule.id not in selected:
            continue
        if rule.id in ignored:
            continue
        ran.add(rule.id)
        for violation in rule.check_project(project):
            violations.append(violation)
        for module in project.modules:
            if module.tree is None:
                continue
            for violation in rule.check_module(module, project):
                violations.append(violation)

    by_rel = {m.rel: m for m in project.modules}
    #: (module rel, scope, token, marker line) markers that matched.
    used: Set[Tuple[str, str, str, int]] = set()
    kept = []
    for violation in violations:
        module = by_rel.get(violation.path)
        hit = (
            module.suppression_hit(violation.rule_id, violation.line)
            if module is not None
            else None
        )
        if hit is not None:
            used.add((violation.path, *hit))
            continue
        kept.append(violation)

    if "MPC012" in ran:
        for warning in _unused_suppressions(project, ran, used, selected):
            module = by_rel.get(warning.path)
            if module is None or not module.is_suppressed("MPC012", warning.line):
                kept.append(warning)

    kept.sort(key=Violation.sort_key)
    return kept


def _unused_suppressions(
    project: Project,
    ran: Set[str],
    used: Set[Tuple[str, str, str, int]],
    selected: Optional[Set[str]],
) -> Iterator[Violation]:
    """MPC012 warnings: every disable marker that silenced nothing.

    A marker is checkable only for rules that actually ran this pass
    (``--select MPC006`` must not call a ``disable=MPC001`` stale), and
    unknown rule ids are flagged only on full runs.  ``disable=MPC012``
    markers are meta (they silence these warnings) and never reported.
    """
    rule = _REGISTRY["MPC012"]
    known = rule_ids()
    for module in project.modules:
        markers: List[Tuple[str, str, int]] = [
            ("line", token, line)
            for line, tokens in module.suppressions.items()
            for token in sorted(tokens)
        ] + [
            ("file", token, line)
            for token, line in module.file_suppression_lines.items()
        ]
        for scope, token, line in markers:
            if token == "MPC012":
                continue
            where = "file-level suppression" if scope == "file" else "suppression"
            if token != "ALL" and token not in known:
                if selected is None:
                    yield rule.violation(
                        module,
                        line,
                        f"{where} names unknown rule {token!r} — not in the "
                        "catalogue, so it can never match",
                    )
                continue
            if token != "ALL" and token not in ran:
                continue  # rule skipped this pass; cannot judge the marker
            if token == "ALL" and selected is not None:
                continue  # blanket markers are judged on full runs only
            if (module.rel, scope, token, line) not in used:
                label = "all rules" if token == "ALL" else token
                yield rule.violation(
                    module, line, f"unused {where} of {label} — nothing fires here"
                )


def run_paths(
    paths: Sequence[Path],
    docs: Sequence[Path] = (),
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint ``paths`` (files or directories) and return sorted violations."""
    project = build_project(paths, docs=docs, root=root)
    return run_project(project, select=select, ignore=ignore)
