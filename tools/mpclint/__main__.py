"""``python -m mpclint`` entry point (with tools/ on sys.path)."""

import sys

from mpclint.cli import main

sys.exit(main())
