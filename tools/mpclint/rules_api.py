"""API-surface rules: MPC005 (export integrity) and MPC008 (docs drift).

MPC005 keeps the declared surface honest: every name a package lists in
``__all__`` must actually be bound in its ``__init__``, and every public
``mpc_*`` entry point must accept ``executor=`` or ``config=`` (the
PR-2 contract that lets callers choose serial/thread/process scheduling
everywhere; a ``config: SimulationConfig`` parameter satisfies it since
the bundle carries the executor axis).

MPC008 keeps ``docs/API.md`` honest: under a ``## `repro.xyz```
section heading, the leading code span of each bullet / table row names
an export of that module — flag spans that no longer resolve against the
tree's static symbol table.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional

from mpclint.core import (
    ModuleInfo,
    Project,
    Rule,
    Severity,
    Violation,
    all_rules,
    register,
)

_IDENTIFIER_PATH = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*\Z")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_SPAN = re.compile(r"`([^`]+)`")
_BULLET = re.compile(r"^\s*[*+-]\s+(.*)$")
_TABLE_ROW = re.compile(r"^\s*\|(.+)\|\s*$")
_MODULE_PATH = re.compile(r"repro(\.[A-Za-z_][A-Za-z0-9_]*)*\Z")
#: A rule-catalogue table row in docs/LINTING.md: ``| MPC0xx | severity | ...``
_RULE_ROW = re.compile(r"^\s*\|\s*(MPC\d{3})\s*\|\s*(\w+)\s*\|")


@register
class ExportIntegrityRule(Rule):
    """MPC005: __all__ entries exist; mpc_* entry points take executor=."""

    id = "MPC005"
    severity = Severity.ERROR
    title = "declared API must exist and mpc_* entry points take executor="
    fix_hint = (
        "bind (import or define) every name listed in __all__, and give "
        "mpc_* entry points an `executor: ExecutorLike = None` parameter "
        "(or a `config: SimulationConfig` bundle) threaded to the Cluster"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        if module.name.endswith(".__init__") and module.all_exports is not None:
            package = module.name[: -len(".__init__")]
            available = project.top_level_names(package)
            for name, line in module.all_exports:
                if name not in available:
                    yield self.violation(
                        module,
                        line,
                        f"__all__ lists {name!r} but {package} does not bind it",
                    )
        assert module.tree is not None
        for node in module.tree.body:
            if (
                isinstance(node, ast.FunctionDef)
                and node.name.startswith("mpc_")
                and not node.name.startswith("_")
            ):
                params = {
                    arg.arg
                    for arg in (
                        list(node.args.posonlyargs)
                        + list(node.args.args)
                        + list(node.args.kwonlyargs)
                    )
                }
                if (
                    "executor" not in params
                    and "config" not in params
                    and node.args.kwarg is None
                ):
                    yield self.violation(
                        module,
                        node,
                        f"MPC entry point {node.name!r} accepts neither "
                        "executor= nor config= — callers cannot choose the "
                        "round executor",
                    )


def _normalize_span(raw: str) -> Optional[str]:
    """Code span -> dotted identifier path, or None if it is prose."""
    text = raw.strip().split("(")[0].strip()
    if not text or not _IDENTIFIER_PATH.match(text):
        return None
    return text


def _leading_spans(line: str) -> List[str]:
    """Candidate symbol spans: bullet first-span, or all first-cell spans."""
    table = _TABLE_ROW.match(line)
    if table:
        cells = [c for c in table.group(1).split("|") if c.strip()]
        if not cells or set(cells[0].strip()) <= {"-", ":", " "}:
            return []
        return _CODE_SPAN.findall(cells[0])
    bullet = _BULLET.match(line)
    if bullet:
        spans = _CODE_SPAN.findall(bullet.group(1))
        return spans[:1]
    return []


@register
class DocsDriftRule(Rule):
    """MPC008: docs/API.md symbols must resolve against the tree."""

    id = "MPC008"
    severity = Severity.ERROR
    title = "docs/API.md references a symbol that no longer exists"
    fix_hint = (
        "update docs/API.md (or restore the export): section headings name "
        "a module, and each bullet/table row leads with one of its symbols"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        for rel, text in project.docs.items():
            if not rel.endswith(".md"):
                continue
            yield from self._check_doc(project, rel, text)
            if rel.endswith("LINTING.md"):
                yield from self._check_rule_catalogue(rel, text)

    def _check_rule_catalogue(self, rel: str, text: str) -> Iterator[Violation]:
        """The LINTING.md rule table must match ``all_rules()`` exactly.

        Every ``| MPC0xx | severity |`` row must name a registered rule
        with the right severity, and every registered rule must have a
        row — the catalogue drifting is exactly the failure mode MPC008
        exists to catch.
        """
        registry = {rule.id: rule for rule in all_rules()}
        documented = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            row = _RULE_ROW.match(line)
            if row is None:
                continue
            rule_id, severity = row.group(1), row.group(2).lower()
            documented.setdefault(rule_id, lineno)
            rule = registry.get(rule_id)
            if rule is None:
                yield self.doc_violation(
                    rel,
                    lineno,
                    f"rule catalogue lists {rule_id} but no such rule is "
                    "registered — remove the stale row",
                )
            elif severity != rule.severity:
                yield self.doc_violation(
                    rel,
                    lineno,
                    f"rule catalogue says {rule_id} is {severity!r} but the "
                    f"registered severity is {rule.severity!r}",
                )
        if documented:  # only judge completeness when the table exists
            for rule_id in sorted(set(registry) - set(documented)):
                yield self.doc_violation(
                    rel,
                    1,
                    f"rule {rule_id} ({registry[rule_id].title}) is missing "
                    "from the rule catalogue table",
                )

    def _check_doc(self, project: Project, rel: str, text: str) -> Iterator[Violation]:
        current: Optional[str] = None
        in_code_fence = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            heading = _HEADING.match(line)
            if heading:
                current = None
                for span in _CODE_SPAN.findall(heading.group(2)):
                    span = span.strip()
                    if _MODULE_PATH.match(span):
                        if project.is_module(span):
                            current = span
                        else:
                            yield self.doc_violation(
                                rel,
                                lineno,
                                f"section heading names missing module `{span}`",
                            )
                        break
                continue
            if current is None:
                continue
            for raw in _leading_spans(line):
                span = _normalize_span(raw)
                if span is None:
                    continue
                full = span if span.split(".")[0] == "repro" else f"{current}.{span}"
                if not project.resolve_dotted(full):
                    yield self.doc_violation(
                        rel,
                        lineno,
                        f"`{raw.strip()}` (resolved as {full}) is not defined "
                        "in the tree",
                    )
