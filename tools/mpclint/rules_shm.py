"""Rule about the shm executor's zero-copy lifetime contract: MPC010.

The shm executor (``repro/mpc/executor.py``) backs large machine state
with shared-memory segments owned by an :class:`~repro.mpc.arena.Arena`.
Values a step reads via ``machine.get`` may be zero-copy views into
those segments, and the arena reclaims a segment the moment no machine
state references it (``Arena.reconcile``).  Two step-code patterns break
that contract in ways the runtime cannot police:

* stashing an arena view somewhere the reachability scan cannot see —
  a module global, a ``global``-declared name, a cache appended to from
  inside the step.  The arena frees the segment under the view and the
  next read is a use-after-unmap, which crashes the process rather than
  raising.
* putting a raw buffer object — a ``memoryview``, a segment's ``.buf``,
  or a ``SharedMemory`` instance — into an outbox or the machine store.
  Raw buffers do not pickle across the worker boundary, bypass word
  accounting, and pin mappings the coordinator believes it owns.

Steps also must not create or attach ``SharedMemory`` themselves: the
arena is the single owner of segment lifecycle, and a segment minted
inside a step leaks on worker death because no handle for it ever
reaches the coordinator.  Arrays are always safe to ``put``/``send`` —
promotion and materialisation are the executor's job, not the step's.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from mpclint.core import (
    ModuleInfo,
    Project,
    Rule,
    Severity,
    Violation,
    dotted,
    local_names,
    register,
)

from mpclint.rules_steps import _MUTATORS, _base_name, _step_function_defs

#: Methods whose result is (or may be) a zero-copy view into an arena
#: segment when running under the shm executor.
_VIEW_SOURCES = {"get", "view", "materialize"}

#: Dotted-name tails that denote a raw shared-memory object.
_RAW_CONSTRUCTORS = {"SharedMemory", "memoryview"}


def _raw_buffer_reason(expr: ast.AST) -> Optional[str]:
    """Why ``expr`` is a raw buffer object, or None if it is not one."""
    if isinstance(expr, ast.Call):
        tail = (dotted(expr.func) or "").split(".")[-1]
        if tail in _RAW_CONSTRUCTORS:
            return f"a {tail} object"
    if isinstance(expr, ast.Attribute) and expr.attr == "buf":
        return "a segment's raw .buf"
    return None


def _derives_view(expr: ast.AST) -> bool:
    """True when any part of ``expr`` calls a view-returning method."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _VIEW_SOURCES
        ):
            return True
    return False


@register
class StepArenaLifetimeRule(Rule):
    """MPC010: steps must respect the arena's zero-copy lifetime contract."""

    id = "MPC010"
    severity = Severity.ERROR
    title = "steps must not leak arena views or ship raw buffers"
    fix_hint = (
        "keep views local to the step (machine state is the only place "
        "the arena's reachability scan looks); copy with np.asarray(...)."
        "copy() if a value must outlive the round; send/put arrays, never "
        "memoryview/.buf/SharedMemory — segment lifecycle belongs to the "
        "Arena, not to step code"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        for func in _step_function_defs(module):
            yield from self._check_step(module, func)

    def _check_step(
        self, module: ModuleInfo, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        locals_ = local_names(func)
        globals_ = module.top_level - locals_
        declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module, func, node, globals_, declared_global
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_stash(
                    module, func, node, globals_, declared_global
                )

    def _check_call(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef,
        call: ast.Call,
        globals_: Set[str],
        declared_global: Set[str],
    ) -> Iterator[Violation]:
        callee = dotted(call.func) or ""
        tail = callee.split(".")[-1]
        if tail == "SharedMemory":
            yield self.violation(
                module,
                call,
                f"step {func.name!r} creates/attaches SharedMemory directly — "
                "segment lifecycle belongs to the Arena; store arrays and let "
                "the executor promote them",
            )
            return
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in {"send", "put"}:
                # ctx.send(dest, payload, ...) / machine.put(key, value):
                # the payload is the second positional (or its keyword).
                payloads: List[ast.AST] = list(call.args[1:2])
                for kw in call.keywords:
                    if kw.arg in {"payload", "value"}:
                        payloads.append(kw.value)
                for payload in payloads:
                    reason = _raw_buffer_reason(payload)
                    if reason is not None:
                        yield self.violation(
                            module,
                            payload,
                            f"step {func.name!r} passes {reason} to .{attr}() — "
                            "raw buffers do not pickle across the worker "
                            "boundary and bypass word accounting; pass the "
                            "array itself",
                        )
            elif attr in _MUTATORS:
                base = _base_name(call.func.value)
                if (
                    base is not None
                    and (base in globals_ or base in declared_global)
                    and base not in module.module_aliases
                    and any(_derives_view(arg) for arg in call.args)
                ):
                    yield self.violation(
                        module,
                        call,
                        f"step {func.name!r} stashes an arena view into "
                        f"module-level {base!r} via .{attr}() — the arena "
                        "cannot see it and will unmap the segment under it",
                    )

    def _check_stash(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef,
        node: ast.AST,
        globals_: Set[str],
        declared_global: Set[str],
    ) -> Iterator[Violation]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not _derives_view(node.value):
            return
        for target in targets:
            escapes = False
            if isinstance(target, ast.Name):
                escapes = target.id in declared_global
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                base = _base_name(target)
                escapes = base is not None and (
                    base in globals_ or base in declared_global
                )
            if escapes:
                yield self.violation(
                    module,
                    node,
                    f"step {func.name!r} stashes an arena view outside the "
                    "machine — views are only valid while machine state "
                    "references the segment; copy before caching",
                )
