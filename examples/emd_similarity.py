"""Earth-Mover distance between point clouds via one shared tree embedding.

Scenario: compare many "documents", each represented as a cloud of
word-embedding vectors (synthetic here), by transportation distance.
Exact EMD is O(n^3) per pair; with ONE tree embedding of the union, each
pair's tree EMD is a linear-time flow computation — and it provably
dominates the true EMD while staying within the embedding distortion.

Run:  python examples/emd_similarity.py
"""

import numpy as np

from repro.apps.emd import exact_emd, tree_emd_from_tree
from repro.core.sequential import sequential_tree_embedding
from repro.util.rng import as_generator


def synthetic_document(rng, topic_center, n_words=24, d=6, delta=2048):
    """A document = a cloud of 'word vectors' around its topic."""
    cloud = topic_center + rng.normal(0, 0.02 * delta, size=(n_words, d))
    return np.clip(np.rint(cloud), 1, delta)


def main() -> None:
    rng = as_generator(3)
    d, delta = 6, 2048
    topics = rng.uniform(0.25 * delta, 0.75 * delta, size=(3, d))
    # Documents 0,1 share topic A; document 2 is topic B.
    docs = [
        synthetic_document(rng, topics[0]),
        synthetic_document(rng, topics[0]),
        synthetic_document(rng, topics[1]),
    ]
    n_words = docs[0].shape[0]

    # One embedding of all words, reused for every pairwise comparison.
    union = np.vstack(docs)
    tree = sequential_tree_embedding(union, 2, seed=4)

    print("pairwise document distances (tree EMD vs exact EMD):")
    for i in range(3):
        for j in range(i + 1, 3):
            # Restrict the union tree to this pair's points: slicing the
            # label matrix keeps the hierarchy (and its weights) intact.
            from repro.tree.hst import HSTree

            idx = np.r_[
                np.arange(i * n_words, (i + 1) * n_words),
                np.arange(j * n_words, (j + 1) * n_words),
            ]
            sub_tree = HSTree(
                tree.label_matrix[:, idx], tree.level_weights, points=union[idx]
            )
            estimate = tree_emd_from_tree(sub_tree, n_words)
            true = exact_emd(docs[i], docs[j])
            marker = "same-topic" if (i, j) == (0, 1) else "cross-topic"
            print(f"  doc{i} vs doc{j} [{marker:11s}]: "
                  f"tree={estimate:10.1f}  exact={true:10.1f}  "
                  f"ratio={estimate / true:5.2f}x")

    print("\ntree EMD preserves the similarity ordering: same-topic pairs "
          "are closest under both metrics")


if __name__ == "__main__":
    main()
