"""Regenerate the paper's Figure 1 as SVG files.

Writes figure1a_grid.svg, figure1b_ball.svg, figure1c_hybrid.svg into
``examples/output/`` — one level/sample of each partitioning method on
the same 2-D point cloud, points colored by their part.

Run:  python examples/figure1_render.py
"""

import pathlib

from repro.viz.partitions import render_figure1


def main() -> None:
    out_dir = pathlib.Path(__file__).parent / "output"
    written = render_figure1(out_dir, n=180, box=40.0, w=4.0, seed=7)
    print("Figure 1 panels written:")
    for name, path in written.items():
        print(f"  {name}: {path} ({path.stat().st_size} bytes)")
    print(
        "\nOpen the SVGs in any browser. Panel (a) tiles space with grid "
        "cells; (b) shows one-plus grids of balls leaving gray uncovered "
        "points; (c) intersects per-axis interval partitions (the 2-D "
        "shadow of the paper's cylinders)."
    )


if __name__ == "__main__":
    main()
