"""The full Theorem 1 pipeline on the resource-enforcing MPC simulator.

Shows what the paper's headline algorithm actually does: FJLT dimension
reduction in O(1) rounds, then hybrid-partitioning tree embedding in
O(1) rounds — with every message and every machine's memory charged
against the fully scalable ``O((nd)^eps)`` budget.

Run:  python examples/mpc_pipeline_demo.py
"""

from repro.core.pipeline import theorem1_pipeline
from repro.data import gaussian_clusters


def print_report(name, report):
    print(f"  {name}:")
    print(f"    machines        {report.num_machines}")
    print(f"    local budget    {report.local_memory} words")
    print(f"    peak local use  {report.max_local_words} words "
          f"({report.max_local_words / report.local_memory:.0%})")
    print(f"    rounds          {report.rounds}")
    print(f"    comm volume     {report.comm_words} words "
          f"in {report.messages} messages")


def main() -> None:
    n, d, delta = 192, 64, 1024
    points = gaussian_clusters(n, d, delta, clusters=4, seed=20)
    print(f"input: {n} points x {d} dims (total {n * d} words)")

    result = theorem1_pipeline(points, xi=0.3, seed=21)

    print(f"\nstage 1 — MPC FJLT: {d} dims -> {result.embedded.shape[1]} dims")
    print(f"  measured JL ratio range: [{result.jl_min_ratio:.3f}, "
          f"{result.jl_max_ratio:.3f}] (target 1 +/- {result.xi})")
    print_report("resources", result.fjlt_report)

    print(f"\nstage 2 — MPC hybrid partitioning (r = {result.r} buckets)")
    print_report("resources", result.embed_report)

    print(f"\ntotal rounds: {result.total_rounds}  (O(1), independent of n)")
    print(f"domination certified: {result.domination_certified}")

    rep_tree = result.tree
    print(f"output tree: {rep_tree.num_levels} levels, "
          f"{rep_tree.nodes.count} nodes over {rep_tree.n} leaves")

    from repro.core.distortion import distortion_report

    rep = distortion_report(rep_tree, points)
    print(f"embedding quality: domination_min={rep.domination_min:.2f}, "
          f"mean stretch={rep.mean_expected_ratio:.1f}x")


if __name__ == "__main__":
    main()
