"""Interoperate with the scientific-Python clustering ecosystem.

The HST produced by the embedding exports to (a) SciPy linkage matrices
— so ``scipy.cluster.hierarchy`` tooling (dendrograms, flat cuts,
cophenetic analysis) works directly — and (b) Newick strings for tree
tooling from other ecosystems.

Run:  python examples/hierarchy_interop.py
"""

import numpy as np
from scipy.cluster.hierarchy import fcluster

from repro.core.sequential import sequential_tree_embedding
from repro.data import gaussian_clusters
from repro.tree.export import to_linkage, to_newick


def main() -> None:
    true_k = 3
    points = gaussian_clusters(120, 4, delta=4096, clusters=true_k,
                               spread=0.01, seed=23)
    tree = sequential_tree_embedding(points, 2, seed=24)

    # SciPy linkage: cut the embedding's hierarchy into flat clusters.
    # A random-shift hierarchy may split one planted cluster before
    # separating another (a known HST artifact), so cut a bit finer than
    # the planted count and check PURITY: flat clusters must never MIX
    # planted clusters, even if a planted cluster spans several flat ones.
    link = to_linkage(tree)
    cut_k = 4 * true_k
    flat = fcluster(link, t=cut_k, criterion="maxclust")
    sizes = sorted((int(s) for s in np.bincount(flat)[1:] if s), reverse=True)
    print(f"scipy fcluster cut at k={cut_k}: cluster sizes {sizes}")

    impure_pairs = 0
    total_pairs = 0
    for cluster_id in np.unique(flat):
        members = np.flatnonzero(flat == cluster_id)
        if members.size < 2:
            continue
        from scipy.spatial.distance import pdist

        dists = pdist(points[members])
        total_pairs += dists.size
        impure_pairs += int((dists > 400).sum())  # cross-planted distance
    purity = 1.0 - impure_pairs / max(total_pairs, 1)
    print(f"intra-flat-cluster purity: {purity:.1%} "
          "(pairs within a flat cluster that are truly close)")

    # Newick export (truncated print).
    newick = to_newick(tree)
    print(f"\nNewick head: {newick[:100]}...")
    print(f"Newick length: {len(newick)} chars, "
          f"{newick.count('(')} internal groups")

    assert purity > 0.95
    print("\nembedding hierarchy is directly consumable by scipy tooling")


if __name__ == "__main__":
    main()
