"""Tree ensembles: buying accuracy with independent embedding samples.

Theorem 2's distortion bound holds in *expectation* over the random
tree.  A single tree can stretch an unlucky pair badly; averaging (or
taking the min over) several independent trees concentrates toward the
expectation.  This demo measures nearest-neighbor quality as the
ensemble grows.

Run:  python examples/ensemble_queries.py
"""

import numpy as np
from scipy.spatial.distance import cdist

from repro.core.ensemble import build_ensemble
from repro.data import gaussian_clusters


def nn_quality(points, ensemble, mode, queries):
    """Mean (found NN distance / true NN distance) over query points."""
    dmat = cdist(points, points)
    np.fill_diagonal(dmat, np.inf)
    ratios = []
    for q in queries:
        j, _ = ensemble.nearest(q, mode=mode)
        ratios.append(dmat[q, j] / dmat[q].min())
    return float(np.mean(ratios))


def main() -> None:
    points = gaussian_clusters(300, 6, delta=4096, clusters=5, seed=51)
    queries = list(range(0, 300, 10))

    print("ensemble size -> NN quality (found/true distance; 1.0 = perfect)")
    full = build_ensemble(points, 8, r=2, seed=52)
    from repro.core.ensemble import TreeEnsemble

    for size in (1, 2, 4, 8):
        sub = TreeEnsemble(full.trees[:size], points=points)
        q_min = nn_quality(points, sub, "min", queries)
        print(f"  {size} trees: min-combine {q_min:5.2f}x")

    rep = full.report()
    print(f"\nensemble of 8: domination_min={rep.domination_min:.2f}, "
          f"expected distortion={rep.expected_distortion:.1f} "
          f"(worst single tree: {rep.worst_single_tree_distortion:.1f})")
    assert rep.expected_distortion <= rep.worst_single_tree_distortion
    print("averaging provably tightens the worst-pair stretch")


if __name__ == "__main__":
    main()
