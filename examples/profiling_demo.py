"""Where does the time go?  Stage timing of the full pipeline.

The hpc-parallel workflow in one script: measure before judging.  Times
the stages of a Theorem 1 run (FJLT, one batched hybrid draw, hybrid
partitioning, tree assembly/evaluation) and prints the breakdown.

For controlled batch-vs-scalar speedup numbers with fixed seeds and MPC
accounting, use the unified harness instead:
``PYTHONPATH=src python benchmarks/harness.py`` (see docs/PERFORMANCE.md).

Run:  python examples/profiling_demo.py
"""


from repro.core.distortion import distortion_report
from repro.core.mpc_embedding import mpc_tree_embedding
from repro.data import gaussian_clusters
from repro.jl.mpc_fjlt import mpc_fjlt
from repro.partition import hybrid_assign_batch
from repro.util.profiling import StageTimer


def main() -> None:
    n, d = 512, 128
    points = gaussian_clusters(n, d, delta=2048, clusters=6, seed=77)
    timer = StageTimer()

    with timer.stage("fjlt (dimension reduction)"):
        embedded, _ = mpc_fjlt(points, xi=0.35, seed=78)

    with timer.stage("one batched hybrid draw"):
        # r = 26 keeps each bucket ~4-dimensional so the default grid
        # budget actually covers the points (Definition 3's whole point).
        labels = hybrid_assign_batch(embedded, 2048.0, 26, seed=80)

    with timer.stage("hybrid partitioning + tree"):
        result = mpc_tree_embedding(
            embedded, seed=79, on_uncovered="singleton"
        )

    with timer.stage("quality evaluation (all pairs)"):
        report = distortion_report(result.tree, points)

    print(f"pipeline on n={n}, d={d} "
          f"(reduced to {embedded.shape[1]} dims, r={result.r}; "
          f"single hybrid draw at w=2048: {labels.max() + 1} parts):\n")
    print(timer.summary())
    print(f"\nembedding quality: domination_min={report.domination_min:.2f}, "
          f"mean stretch={report.mean_expected_ratio:.1f}x")

    heaviest = max(timer.items(), key=lambda kv: kv[1])[0]
    print(f"\nheaviest stage: {heaviest}")


if __name__ == "__main__":
    main()
