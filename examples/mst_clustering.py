"""Approximate Euclidean MST and single-linkage clustering from a tree embedding.

The workload the paper's introduction motivates: massive clustered data
where an exact O(n^2) MST is too expensive on one machine, but the tree
embedding (computable in O(1) MPC rounds) yields a provably
O(log^1.5 n)-approximate spanning tree whose heavy edges reveal cluster
structure.

Run:  python examples/mst_clustering.py
"""

import numpy as np

from repro.apps.mst import exact_emst, tree_mst
from repro.core.sequential import sequential_tree_embedding
from repro.data import gaussian_clusters


def connected_components(n, edges):
    """Union-find components after removing the k heaviest edges."""
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in edges:
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[ra] = rb
    return [find(i) for i in range(n)]


def main() -> None:
    true_clusters = 4
    points = gaussian_clusters(
        300, 6, delta=4096, clusters=true_clusters, spread=0.01, seed=7
    )
    n = points.shape[0]

    # Tree-embedding MST (the Corollary 1(2) algorithm).
    tree = sequential_tree_embedding(points, 2, seed=8)
    approx = tree_mst(tree, points)
    exact = exact_emst(points)
    print(f"exact EMST cost : {exact.cost:12.1f}")
    print(f"tree  MST  cost : {approx.cost:12.1f}"
          f"   (ratio {approx.cost / exact.cost:.2f}x)")

    # Single-linkage clustering: drop the (k-1) heaviest tree-MST edges.
    lengths = np.linalg.norm(
        points[approx.edges[:, 0]] - points[approx.edges[:, 1]], axis=1
    )
    keep = np.argsort(lengths)[: -(true_clusters - 1)]
    labels = connected_components(n, approx.edges[keep])
    found = len(set(labels))
    sizes = sorted(
        np.bincount(np.unique(labels, return_inverse=True)[1]), reverse=True
    )
    print(f"\nclusters found by cutting {true_clusters - 1} heaviest edges: "
          f"{found} (sizes {sizes})")
    assert found == true_clusters
    print("cluster recovery succeeded")


if __name__ == "__main__":
    main()
