"""Quickstart: embed a point set into a tree metric and query it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import embed
from repro.data import gaussian_clusters
from repro.partition import hybrid_assign_batch


def main() -> None:
    # 1. Make some data: 256 points in 8 dimensions on a [1, 1024] lattice.
    points = gaussian_clusters(256, 8, delta=1024, clusters=4, seed=0)
    print(f"data: {points.shape[0]} points in {points.shape[1]} dims")

    # 2. One hybrid partitioning draw (Definition 3), batched: part
    #    labels for every point from a single vectorized call.  This is
    #    the kernel each level of the embedding below runs.
    labels = hybrid_assign_batch(points, 256.0, 2, num_grids=64, seed=1)
    print(f"one hybrid draw at w=256: {labels.max() + 1} parts")

    # 3. Embed into a tree (Algorithm 1, hybrid partitioning with r=2).
    emb = embed(points, r=2, seed=1)
    print(f"tree: {emb.tree.num_levels} levels, "
          f"{emb.tree.nodes.count} nodes, backend={emb.backend}")

    # 4. Query tree distances — they always dominate Euclidean distances.
    for i, j in [(0, 1), (0, 128), (17, 200)]:
        true = float(np.linalg.norm(points[i] - points[j]))
        approx = emb.distance(i, j)
        print(f"  pair ({i:3d},{j:3d}): euclidean={true:9.2f}  "
              f"tree={approx:9.2f}  stretch={approx / true:6.2f}x")

    # 5. Full quality report over all pairs.
    rep = emb.report()
    print("\nreport:")
    for key, value in rep.as_dict().items():
        print(f"  {key:22s} {value:.4g}" if isinstance(value, float)
              else f"  {key:22s} {value}")

    # 6. Domination is a hard guarantee; distortion is the quality metric.
    assert rep.domination_min >= 1.0
    print("\ndomination verified: every tree distance >= Euclidean distance")


if __name__ == "__main__":
    main()
