"""Corollary 1 end to end on the simulator: embed once, solve thrice.

Runs Algorithm 2 to get the embedding, then the three distributed
applications (MST, EMD, densest ball) — each a handful of MPC rounds —
and prints the per-round trace of one of them.

Run:  python examples/mpc_applications_demo.py
"""


from repro.apps.mpc_apps import mpc_densest_ball, mpc_tree_emd, mpc_tree_mst
from repro.apps.mst import exact_emst
from repro.core.mpc_embedding import mpc_tree_embedding
from repro.data import gaussian_clusters
from repro.mpc.trace import explain_report


def main() -> None:
    n = 160
    points = gaussian_clusters(n, 4, 1024, clusters=4, spread=0.01, seed=42)

    # Stage 1: the embedding (Algorithm 2).
    emb = mpc_tree_embedding(points, 2, seed=43)
    print(f"embedding: {emb.rounds} rounds on {emb.cluster.num_machines} "
          f"machines, {emb.tree.num_levels} levels")

    # Stage 2a: minimum spanning tree (Corollary 1(2)).
    mst = mpc_tree_mst(emb.tree, points)
    exact = exact_emst(points).cost
    print(f"\nMST: {mst.report.rounds} rounds, cost {mst.cost:.0f} "
          f"(exact {exact:.0f}, ratio {mst.cost / exact:.2f}x)")

    # Stage 2b: Earth-Mover distance between the first and second half.
    emd = mpc_tree_emd(emb.tree, n // 2)
    print(f"EMD: {emd.report.rounds} rounds, estimate {emd.estimate:.0f}")

    # Stage 2c: densest ball with target diameter 60.
    ball = mpc_densest_ball(emb.tree, 60.0, r=2)
    print(f"densest ball: {ball.report.rounds} rounds, "
          f"{ball.count} points at level {ball.level}")

    print("\nper-round trace of the MST computation:")
    print(explain_report(mst.report))


if __name__ == "__main__":
    main()
