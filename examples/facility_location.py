"""Facility location through a tree embedding (the paper's Section 1.3.3).

The paper notes that problems with tree-DP formulations inherit an
f(O(log^1.5 n)) approximation through the embedding.  Uncapacitated
facility location is the classic instance: we solve it EXACTLY on the
HST by dynamic programming, then evaluate the chosen facilities under
the true Euclidean metric.

Run:  python examples/facility_location.py
"""

from scipy.spatial.distance import cdist

from repro.apps.tree_dp import tree_facility_location
from repro.core.sequential import sequential_tree_embedding
from repro.data import gaussian_clusters


def euclidean_cost(points, facilities, facility_cost):
    connect = cdist(points, points[facilities]).min(axis=1).sum()
    return len(facilities) * facility_cost + connect


def main() -> None:
    points = gaussian_clusters(200, 5, delta=4096, clusters=5,
                               spread=0.015, seed=17)
    tree = sequential_tree_embedding(points, 2, seed=18)

    print("facility cost  -> #opened  tree-metric cost   euclidean cost")
    for f in (50.0, 500.0, 5000.0, 50000.0):
        res = tree_facility_location(tree, f)
        eu = euclidean_cost(points, res.facilities, f)
        print(f"  {f:10.0f}  ->  {len(res.facilities):4d}     "
              f"{res.cost:14.1f}    {eu:14.1f}")

    # Sanity: with the facility price roughly matching one cluster's
    # connection mass (tree distances inflate intra-cluster costs, so the
    # matching price is high), the DP opens about one facility per
    # planted cluster.
    res = tree_facility_location(tree, 50000.0)
    print(f"\nat f=50000: opened {len(res.facilities)} facilities for "
          f"5 planted clusters")
    assert 2 <= len(res.facilities) <= 12
    print("facility count tracks the planted cluster structure")


if __name__ == "__main__":
    main()
