"""Approximate nearest-neighbor search from tree embeddings.

Build a handful of independent embeddings; a query's candidates are the
points sharing its deepest clusters in any tree; exact evaluation of
that small candidate set finds a near-optimal neighbor — the
tree-embedding flavor of the ANN pipeline Ailon–Chazelle built the
FJLT for.

Run:  python examples/ann_search.py
"""

import time

import numpy as np
from scipy.spatial.distance import cdist

from repro.apps.ann import TreeANN
from repro.data import gaussian_clusters


def main() -> None:
    n = 400
    points = gaussian_clusters(n, 8, delta=8192, clusters=8,
                               spread=0.01, seed=33)

    index = TreeANN.build(points, num_trees=4, r=2,
                          candidates_per_tree=10, seed=34)
    queries = list(range(0, n, 8))

    # Quality: found NN distance vs true NN distance.
    t0 = time.perf_counter()
    quality = index.quality(queries=np.array(queries))
    t_ann = time.perf_counter() - t0

    # Average candidate set size (the work per query).
    sizes = [index.candidates(q).size for q in queries]

    # Brute-force comparison timing.
    t0 = time.perf_counter()
    dmat = cdist(points[queries], points)
    for row_idx, q in enumerate(queries):
        dmat[row_idx, q] = np.inf
    dmat.argmin(axis=1)
    t_brute = time.perf_counter() - t0

    print(f"queries: {len(queries)} of n={n}")
    print(f"candidates examined per query: {np.mean(sizes):.1f} "
          f"(vs {n - 1} brute force)")
    print(f"NN quality (found/true distance): {quality:.3f} "
          "(1.0 = always exact)")
    print(f"timing: ANN {t_ann * 1e3:.0f} ms vs brute {t_brute * 1e3:.0f} ms "
          "(toy scale; the point is the candidate count)")

    assert quality < 1.3
    print("\nnear-exact neighbors from a few dozen candidates per query")


if __name__ == "__main__":
    main()
