"""Densest-ball detection: find the hot region in noisy data.

Corollary 1(1): the hierarchy levels of a tree embedding double as a
multi-resolution density index — the largest cluster at the level whose
scale matches a target diameter D is a bicriteria-approximate densest
ball, computed without any pairwise distance scan.

Run:  python examples/densest_ball_outliers.py
"""

import numpy as np

from repro.apps.densest_ball import exact_densest_ball, tree_densest_ball
from repro.core.sequential import sequential_tree_embedding


def main() -> None:
    rng = np.random.default_rng(11)
    d, delta = 3, 4096
    # 250 background points plus one dense event region of 80 points.
    noise = rng.uniform(1, delta, size=(250, d))
    hotspot_center = np.array([1000.0, 3000.0, 2000.0])
    hotspot = hotspot_center + rng.normal(0, 6.0, size=(80, d))
    points = np.rint(np.clip(np.vstack([noise, hotspot]), 1, delta))
    target_diameter = 50.0

    # Exact baseline: O(n^2) scan over point-centered balls.
    exact = exact_densest_ball(points, target_diameter, radius_factor=0.5)
    print(f"exact scan      : {exact.count} points within diameter "
          f"{target_diameter}")

    # Tree-based: one embedding, then a bincount per level.
    r = 2
    tree = sequential_tree_embedding(points, r, seed=12)
    result = tree_densest_ball(tree, target_diameter, r=r, points=points)
    recovered = np.mean(result.members >= 250)  # fraction from the hotspot
    print(f"tree  embedding : {result.count} points at level {result.level}, "
          f"measured diameter {result.diameter_bound:.1f} "
          f"(beta = {result.diameter_bound / target_diameter:.2f})")
    print(f"hotspot purity  : {recovered:.0%} of the returned cluster is "
          "from the planted region")

    assert recovered > 0.9, "the dense region should dominate the answer"
    print("\nhotspot located without any pairwise distance computation")


if __name__ == "__main__":
    main()
